"""Exact incremental cascade replay — cone invalidation and reuse plumbing.

The differential matrices in ``tests/test_parallel_equivalence`` already
pin the batched engine (replay included) against the dict oracle; these
tests aim the replay machinery's own edges: adversarial shapes where a
newly explored row lands mid-hop inside another game's snapshotted
interior, games dropping out of the replay arena through bigint
ejection, the redo hand-back when a cone demands a scale escalation, the
adaptive cone gate, GameCache's cone-aware batch validation, and the
cohort-granular / engine-aware pool dispatch.  One mid-size differential
shape runs in the default tier-1 tier (not ``--slow``-gated) so replay
correctness is exercised on every push.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.ampc import faults
import repro.core.batched_games as batched_games
from repro.ampc.pool import (
    _SHARED_POOLS,
    CoinGamePool,
    close_shared_pools,
    min_pool_games_for,
)
from repro.core.batched_games import play_games_batched
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.core.columnar_rounds import (
    GameCache,
    play_coin_game,
    residual_adjacency_lists,
)
from repro.graphs.generators import (
    cycle_graph,
    grid_2d,
    preferential_attachment,
    random_gnm,
    union_of_random_forests,
)
from repro.graphs.graph import Graph
from repro.lca.coin_game import fixed_coin_scale, max_provable_layer

_INF = float("inf")


def _assert_same_outcome(a, b):
    assert a.partition.layers == b.partition.layers
    assert a.rounds == b.rounds
    for ra, rb in zip(a.simulator.stats.rounds, b.simulator.stats.rounds):
        for field in (
            "machines_active", "max_reads", "max_writes",
            "total_reads", "total_writes", "store_words",
        ):
            assert getattr(ra, field) == getattr(rb, field), field


def _reuse_totals(outcome) -> dict:
    totals: dict = {}
    for reuse in outcome.round_reuse:
        for key, value in reuse.items():
            if isinstance(value, int):
                totals[key] = totals.get(key, 0) + value
    return totals


def _engine_vs_scalar(graph: Graph, beta: int, x: int):
    """Full-fleet lockstep run vs the scalar oracle, all observables."""
    offsets, targets = graph.csr()
    n = graph.num_vertices
    clip = max_provable_layer(x, beta)
    horizon = 4 * (clip + 2)
    scale = fixed_coin_scale(beta, horizon)
    roots = np.arange(n, dtype=np.int64)
    out_layer = np.full(n, _INF)
    out_count = np.zeros(n, dtype=np.int64)
    stats: dict = {}
    info = play_games_batched(
        offsets, targets, roots, x=x, beta=beta, clip=clip, horizon=horizon,
        scale=scale, out_layer=out_layer, out_count=out_count,
        want_records=True, replay_stats=stats,
    )
    adj = residual_adjacency_lists(offsets, targets)
    ejected = set(info.ejected.tolist())
    ref_layer = [_INF] * n
    ref_count = [0] * n
    for v in range(n):
        rl = ref_layer if v not in ejected else [_INF] * n
        rc = ref_count if v not in ejected else [0] * n
        reads, writes, record = play_coin_game(
            adj, v, x, beta, clip, horizon, scale, rl, rc, True,
        )
        if v in ejected:
            continue  # the fallback wrapper replays these scalar-side
        assert reads == info.reads[v], f"reads diverge at root {v}"
        assert writes == info.writes[v], f"writes diverge at root {v}"
        assert record[0] == info.records[v][0], f"S_v diverges at root {v}"
        assert sorted(record[1]) == sorted(info.records[v][1])
    if not ejected:
        # Ejected games zero their engine-side fold (the fallback wrapper
        # replays them scalar), so the raw fold compares only when none.
        assert np.array_equal(out_layer, np.array(ref_layer))
        assert np.array_equal(out_count, np.asarray(ref_count))
    return stats


class TestTier1ReplayDifferential:
    def test_mid_size_gnm_shape(self):
        # The tier-1 (every-push) incremental-replay shape: multi-wave
        # games whose balls overlap heavily, so explored rows constantly
        # land inside other games' snapshotted interiors.  Asserts the
        # full outcome against the dict oracle AND that replay actually
        # engaged — a silently disabled replay path cannot pass.
        g = random_gnm(1500, 3000, seed=42)
        oracle = beta_partition_ampc(g, 9, store="dict")
        batched = beta_partition_ampc(g, 9, store="columnar", engine="batched")
        _assert_same_outcome(oracle, batched)
        totals = _reuse_totals(batched)
        assert totals["replayed_waves"] > 0
        assert totals["replayed_entries"] > 0
        assert batched.round_reuse[0]["cone_fraction"] is not None


class TestConeInvalidation:
    @pytest.mark.parametrize("maker,beta,x", [
        # Overlapping-ball shapes: every explore wave patches rows deep
        # inside other games' snapshotted interiors mid-hop.
        (lambda: grid_2d(14, 14), 3, 16),
        (lambda: cycle_graph(160), 1, 4),
        (lambda: random_gnm(220, 440, seed=77), 4, 25),
        (lambda: union_of_random_forests(200, 2, seed=13), 6, 49),
        # Hubs: σ-ranked forwarding sets in play, so games keep losing
        # replay eligibility to the σ-dependence rule.
        (lambda: preferential_attachment(200, 2, seed=9), 6, 49),
    ])
    def test_randomized_adversarial_shapes(self, maker, beta, x):
        stats = _engine_vs_scalar(maker(), beta, x)
        assert stats.get("fresh_waves", 0) > 0

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_randomized_gnm_sweep(self, seed):
        g = random_gnm(150, 300, seed=seed)
        _engine_vs_scalar(g, 9, 100)

    def test_redo_hand_back_is_exact(self):
        # A shape measured to hand games back mid-replay (cone divisions
        # outgrowing the padded snapshot scale): the redo path re-runs
        # them fresh and must stay bit-identical.
        g = random_gnm(1500, 3000, seed=42)
        batched = beta_partition_ampc(g, 9, store="columnar")
        assert _reuse_totals(batched)["redo_games"] > 0
        oracle = beta_partition_ampc(g, 9, store="dict")
        _assert_same_outcome(oracle, batched)

    def test_adaptive_gate_choices_are_invisible(self, monkeypatch):
        # The gate only ever picks between two exact strategies: forcing
        # it fully off (cutoff 0 disables replay after the streak) and
        # fully on (cutoff 1 never disables) must produce identical
        # observables.
        g = random_gnm(300, 600, seed=5)
        oracle = beta_partition_ampc(g, 9, store="dict")
        monkeypatch.setattr(batched_games, "REPLAY_CONE_CUTOFF", -1.0)
        never = beta_partition_ampc(g, 9, store="columnar")
        monkeypatch.setattr(batched_games, "REPLAY_CONE_CUTOFF", 2.0)
        always = beta_partition_ampc(g, 9, store="columnar")
        _assert_same_outcome(oracle, never)
        _assert_same_outcome(oracle, always)
        assert _reuse_totals(never)["replay_disabled"] > 0
        assert _reuse_totals(always).get("replay_disabled", 0) == 0


class TestEjectionDropsOutOfArena:
    def test_ejected_games_mixed_with_replaying_games(self, monkeypatch):
        # A small word budget forces mid-run bigint ejections while other
        # games keep replaying: an ejected game drops out of the replay
        # arena and replays scalar-side, and the fold must not notice.
        g = preferential_attachment(300, 2, seed=11)
        oracle = beta_partition_ampc(g, 6, store="dict")
        monkeypatch.setattr(batched_games, "SCALE_LIMIT", 1 << 24)
        hatch = beta_partition_ampc(g, 6, store="columnar")
        _assert_same_outcome(oracle, hatch)

    def test_gamecache_parity_when_ejection_invalidates_record(
        self, monkeypatch
    ):
        # Multi-round instance under a tiny word budget: cross-round
        # cache records are produced by both the lockstep arena and the
        # scalar escape hatch, and invalidation must treat them alike.
        beta = 3
        g = union_of_random_forests(220, 2, seed=21)
        oracle = beta_partition_ampc(g, beta, x=beta + 1, store="dict")
        monkeypatch.setattr(batched_games, "SCALE_LIMIT", 1 << 22)
        batched = beta_partition_ampc(
            g, beta, x=beta + 1, store="columnar", engine="batched"
        )
        assert batched.rounds >= 2
        _assert_same_outcome(oracle, batched)
        scalar = beta_partition_ampc(
            g, beta, x=beta + 1, store="columnar", engine="scalar"
        )
        assert batched.game_cache_hits == scalar.game_cache_hits


class TestGameCacheConeValidation:
    def test_lookup_all_matches_scalar_lookup(self):
        cache = GameCache()
        cache.store(3, ([3, 4, 5], [(3, 0), (4, 1)], 7, 2))
        cache.store(9, ([9, 2], [(9, 0)], 4, 1))
        cache.advance(np.asarray([1, 1, 1, 2, 2, 1, 0, 0, 0, 1]))
        degrees = np.asarray([1, 1, 1, 2, 2, 1, 0, 0, 0, 1])
        alive = np.ones(10, dtype=bool)
        pos, reads, writes, pu, pl = cache.lookup_all(
            np.asarray([3, 9, 7]), degrees, alive
        )
        assert pos.tolist() == [0, 1]
        assert reads.tolist() == [7, 4]
        assert writes.tolist() == [2, 1]
        assert sorted(zip(pu.tolist(), pl.tolist())) == [
            (3, 0), (4, 1), (9, 0),
        ]
        assert cache.hits == 2 and cache.misses == 1

    def test_cone_intersection_invalidates(self):
        cache = GameCache()
        cache.store(3, ([3, 4, 5], [(3, 0)], 7, 2))
        cache.store(9, ([9, 2], [(9, 0)], 4, 1))
        cache.advance(np.asarray([1, 1, 1, 2, 2, 1, 0, 0, 0, 1]))
        degrees = np.asarray([1, 1, 1, 2, 1, 1, 0, 0, 0, 1])  # deg[4] moved
        alive = np.ones(10, dtype=bool)
        pos, reads, __w, __u, __l = cache.lookup_all(
            np.asarray([3, 9]), degrees, alive
        )
        # 3's ball intersects the invalidation cone (member 4 changed);
        # 9's does not.  The stale record drops on sight.
        assert pos.tolist() == [1]
        assert len(cache) == 1

    def test_dead_member_is_in_the_cone(self):
        cache = GameCache()
        cache.store(3, ([3, 4], [(3, 0)], 3, 1))
        cache.advance(np.asarray([0, 0, 0, 1, 1]))
        alive = np.asarray([True, True, True, True, False])
        pos, *_rest = cache.lookup_all(
            np.asarray([3]), np.asarray([0, 0, 0, 1, 1]), alive
        )
        assert pos.size == 0
        assert len(cache) == 0


class TestPoolDispatch:
    def test_engine_aware_threshold(self):
        assert min_pool_games_for("batched") > min_pool_games_for("scalar")

    def test_batched_rounds_below_cutoff_stay_serial(self):
        # 600 pending games: above the scalar cutoff (256) but below the
        # batched one (2048) — the pool must never fork under the
        # batched engine, and must fork under the scalar engine.
        close_shared_pools()
        g = random_gnm(600, 1200, seed=2)
        beta_partition_ampc(g, 9, store="columnar", workers=2, engine="batched")
        pool = _SHARED_POOLS.get(2)
        assert pool is not None and pool._executor is None
        beta_partition_ampc(g, 9, store="columnar", workers=2, engine="scalar")
        assert _SHARED_POOLS[2]._executor is not None
        close_shared_pools()

    def test_cohort_granular_shards(self):
        # Shard boundaries must fall on cohort multiples when the fleet
        # spans enough cohorts, so workers run whole cache-sized cohorts.
        g = random_gnm(64, 128, seed=4)
        offsets, targets = g.csr()
        clip = max_provable_layer(16, 3)
        horizon = 4 * (clip + 2)
        scale = fixed_coin_scale(3, horizon)
        roots = np.arange(40, dtype=np.int64)
        with CoinGamePool(2) as pool:
            shards = pool.run_games(
                offsets, targets, roots, roots,
                x=16, beta=3, clip=clip, horizon=horizon, scale=scale,
                want_records=False, engine="batched", cohort_games=8,
            )
            sizes = sorted(len(p) for p, __ in shards)
            assert sizes == [8, 8, 8, 8, 8]
            # Too few cohorts for the fleet: rebalances instead.
            shards = pool.run_games(
                offsets, targets, roots[:12], roots[:12],
                x=16, beta=3, clip=clip, horizon=horizon, scale=scale,
                want_records=False, engine="batched", cohort_games=8,
            )
            assert sum(len(p) for p, __ in shards) == 12

    def test_workers_replay_counters_fold_back(self):
        close_shared_pools()
        g = random_gnm(400, 800, seed=6)
        pooled = beta_partition_ampc(
            g, 9, store="columnar", workers=2, min_pool_games=1
        )
        serial = beta_partition_ampc(g, 9, store="columnar", workers=1)
        assert pooled.partition.layers == serial.partition.layers
        assert _reuse_totals(pooled).get("fresh_waves", 0) > 0
        close_shared_pools()


@pytest.fixture(autouse=True)
def _no_worker_env(monkeypatch):
    """These tests pin worker counts explicitly; isolate from CI's env."""
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    yield
    # No test may leak an in-process injected fault plan.
    assert faults._ACTIVE_SET is False
