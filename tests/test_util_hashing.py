"""Tests for the pairwise-independent hash family (Theorem 1.5 substrate)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.gf2 import GF2System
from repro.util.hashing import PairwiseHashFamily


class TestBasics:
    def test_output_range(self):
        fam = PairwiseHashFamily(universe_size=100, num_colors_log2=4)
        for seed in (0, 1, 12345, (1 << fam.seed_bits) - 1):
            for u in (0, 50, 99):
                assert 0 <= fam.evaluate(seed, u) < 16

    def test_out_of_universe_rejected(self):
        fam = PairwiseHashFamily(10, 3)
        with pytest.raises(ValueError):
            fam.evaluate(0, 10)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            PairwiseHashFamily(0, 3)
        with pytest.raises(ValueError):
            PairwiseHashFamily(10, 0)

    def test_seed_bits_is_2k(self):
        fam = PairwiseHashFamily(100, 4)
        assert fam.seed_bits == 2 * fam.k
        assert fam.num_colors == 16


class TestPairwiseIndependence:
    """Exhaustive verification on a small field: for u != v the pair
    (h(u), h(v)) is uniform over pairs of colors."""

    def test_exhaustive_pair_uniformity(self):
        fam = PairwiseHashFamily(universe_size=7, num_colors_log2=2)
        seeds = range(1 << fam.seed_bits)
        for u, v in [(0, 1), (2, 5), (3, 6)]:
            counts: dict[tuple[int, int], int] = {}
            for seed in seeds:
                pair = (fam.evaluate(seed, u), fam.evaluate(seed, v))
                counts[pair] = counts.get(pair, 0) + 1
            expected = len(list(seeds)) / (fam.num_colors**2)
            assert set(counts) == set(
                itertools.product(range(fam.num_colors), repeat=2)
            )
            assert all(c == expected for c in counts.values())

    def test_exhaustive_single_uniformity(self):
        fam = PairwiseHashFamily(universe_size=5, num_colors_log2=2)
        for u in range(5):
            counts = [0] * fam.num_colors
            for seed in range(1 << fam.seed_bits):
                counts[fam.evaluate(seed, u)] += 1
            assert len(set(counts)) == 1  # perfectly uniform

    def test_collision_probability_exact(self):
        fam = PairwiseHashFamily(universe_size=6, num_colors_log2=2)
        total = 1 << fam.seed_bits
        for u, v in [(0, 1), (1, 4)]:
            collisions = sum(
                fam.evaluate(s, u) == fam.evaluate(s, v) for s in range(total)
            )
            assert collisions / total == fam.collision_probability()


class TestConstraintEquivalence:
    """The linear-constraint encodings must agree with direct evaluation."""

    @given(st.integers(0, 2**12 - 1))
    @settings(max_examples=40)
    def test_collision_constraints_match_evaluation(self, seed):
        fam = PairwiseHashFamily(universe_size=40, num_colors_log2=3)
        seed %= 1 << fam.seed_bits
        for u, v in [(0, 1), (5, 17), (20, 39)]:
            rows, rhs = fam.collision_constraints(u, v)
            holds = all(
                bin(row & seed).count("1") % 2 == b for row, b in zip(rows, rhs)
            )
            assert holds == (fam.evaluate(seed, u) == fam.evaluate(seed, v))

    @given(st.integers(0, 2**12 - 1), st.integers(0, 7))
    @settings(max_examples=40)
    def test_value_constraints_match_evaluation(self, seed, color):
        fam = PairwiseHashFamily(universe_size=40, num_colors_log2=3)
        seed %= 1 << fam.seed_bits
        for u in (0, 13, 39):
            rows, rhs = fam.value_constraints(u, color)
            holds = all(
                bin(row & seed).count("1") % 2 == b for row, b in zip(rows, rhs)
            )
            assert holds == (fam.evaluate(seed, u) == color)

    def test_collision_constraint_probability(self):
        # Under uniform seeds the constraints must hold with prob 2^-c.
        fam = PairwiseHashFamily(universe_size=20, num_colors_log2=3)
        rows, rhs = fam.collision_constraints(3, 11)
        sys = GF2System(fam.seed_bits)
        assert sys.probability_with(rows, rhs) == pytest.approx(2**-3)

    def test_value_constraint_probability(self):
        fam = PairwiseHashFamily(universe_size=20, num_colors_log2=3)
        rows, rhs = fam.value_constraints(7, 5)
        sys = GF2System(fam.seed_bits)
        assert sys.probability_with(rows, rhs) == pytest.approx(2**-3)

    def test_self_collision_rejected(self):
        fam = PairwiseHashFamily(10, 2)
        with pytest.raises(ValueError):
            fam.collision_constraints(3, 3)

    def test_bad_color_rejected(self):
        fam = PairwiseHashFamily(10, 2)
        with pytest.raises(ValueError):
            fam.value_constraints(0, 4)
