"""Chaos harness for the fault-tolerant round supervisor.

Randomized seeded :class:`~repro.ampc.faults.FaultPlan` schedules across
(engine, transport, shards, workers) must leave every observable —
partitions, layers, communication counters, guard peaks — bit-identical
to the fault-free serial oracle, because every recovery path re-executes
a pure shard chain.  The matrix here deliberately mixes loss modes:
picklable worker exceptions (``crash``), dead processes that break the
whole executor (``exit``), checksum-detected corruption (``garbage``),
results that cannot cross the pipe (``unpicklable``), lost
shared-memory attachments (``shm-detach``), and completion-order jitter
(``slow``).  Separate legs cover the hang-deadline kill (a deliberately
sleeping worker), the degraded-to-serial fallback (every attempt
faults), teardown hygiene (no orphaned workers or /dev/shm segments
after any schedule), and the ``close_shared_pools`` double-close
regression.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.ampc import faults
from repro.ampc.engine_config import EngineConfig
from repro.ampc.faults import FaultPlan
from repro.ampc.pool import (
    _SHARED_POOLS,
    close_shared_pools,
    new_recovery_counters,
    shared_pool,
)
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.graphs.generators import random_gnm

# Wall-clock keys excluded from comm-counter equality.
_TIMING_KEYS = (
    "shard_wall_s", "comm_overlap_s",
    "serve_s", "install_s", "compact_s", "play_s",
)

# Fast, bounded chaos: no backoff sleeps, default retry budget.  The
# attempts=2 gate on every seeded plan keeps schedules survivable by
# construction (attempt 2 runs clean; max_shard_retries defaults to 2).
_FAST = EngineConfig.from_env().with_overrides(retry_backoff_s=0.0)


def _graph(seed=23):
    return random_gnm(150, 400, seed=seed)


def _counts(comm):
    return [
        {k: v for k, v in c.items() if k not in _TIMING_KEYS} for c in comm
    ]


def _shm_segments() -> set[str]:
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@pytest.fixture
def fresh_pool_env():
    close_shared_pools()
    yield
    close_shared_pools()
    assert faults._ACTIVE_SET is False  # no leaked injected plan
    assert multiprocessing.active_children() == []  # no orphan workers


class TestChaosMatrix:
    @pytest.mark.parametrize("engine", ["batched", "compiled"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_shm_transport_survives_mixed_faults(
        self, engine, seed, fresh_pool_env
    ):
        g = _graph()
        oracle = beta_partition_ampc(
            g, 9, store="columnar", workers=1, engine=engine
        )
        plan = FaultPlan(
            seed=seed, rate=0.35, attempts=2, slow_s=0.005,
            kinds=("crash", "garbage", "unpicklable", "shm-detach", "slow"),
        )
        with faults.inject(plan):
            out = beta_partition_ampc(
                g, 9, store="columnar", workers=2, engine=engine,
                min_pool_games=1, config=_FAST,
            )
        assert out.partition.layers == oracle.partition.layers
        assert out.unlayered_per_round == oracle.unlayered_per_round
        rec = out.round_recovery
        assert rec["degraded_shards"] == 0  # attempts=2 gate: retry wins
        assert rec["recovery_wall_s"] >= 0.0

    @pytest.mark.parametrize("shards", [1, 2, 3, 8])
    def test_message_fabric_survives_mixed_faults(
        self, shards, fresh_pool_env
    ):
        g = _graph()
        oracle = beta_partition_ampc(
            g, 9, store="columnar", workers=1,
            transport="message", shards=shards,
        )
        plan = FaultPlan(
            seed=100 + shards, rate=0.4, attempts=2,
            kinds=("crash", "garbage", "exit"),
        )
        with faults.inject(plan):
            out = beta_partition_ampc(
                g, 9, store="columnar", workers=2, min_pool_games=1,
                transport="message", shards=shards, config=_FAST,
            )
        # The whole observable surface: layers, comm counters (words,
        # messages, sub-rounds, row requests — replayed exactly once per
        # shard despite retries), and guard peaks.
        assert out.partition.layers == oracle.partition.layers
        assert _counts(out.round_comm) == _counts(oracle.round_comm)
        assert out.max_held_words == oracle.max_held_words

    def test_explicit_schedule_hits_named_shards(self, fresh_pool_env):
        # Addressability: fault exactly shards 0 and 1 of dispatch 0 on
        # their first attempts, nothing else.
        g = _graph()
        oracle = beta_partition_ampc(g, 9, store="columnar", workers=1)
        plan = FaultPlan({(0, 0, 0): "crash", (0, 1, 0): "garbage"})
        with faults.inject(plan):
            out = beta_partition_ampc(
                g, 9, store="columnar", workers=2, min_pool_games=1,
                config=_FAST,
            )
        assert out.partition.layers == oracle.partition.layers
        rec = out.round_recovery
        assert rec["worker_faults"] == 1  # the crash
        assert rec["checksum_rejects"] == 1  # the garbage
        assert rec["retries"] == 2

    def test_zero_fault_run_has_zero_recovery(self, fresh_pool_env):
        with faults.inject(None):  # isolate from any CI-wide chaos plan
            out = beta_partition_ampc(
                _graph(), 9, store="columnar", workers=2, min_pool_games=1,
            )
        rec = dict(out.round_recovery)
        wall = rec.pop("recovery_wall_s")
        zeros = new_recovery_counters()
        zeros.pop("recovery_wall_s")
        assert rec == zeros
        # Only checksum verification contributes, and it is tiny.
        assert wall >= 0.0


class TestHangDeadline:
    def test_hung_worker_is_killed_and_retried(self, fresh_pool_env):
        # Shard 0's first attempt sleeps far past the 0.5 s deadline; the
        # supervisor must kill the executor, respawn it, and retry —
        # completing bit-identically, well before the 20 s nap ends.
        g = _graph()
        oracle = beta_partition_ampc(g, 9, store="columnar", workers=1)
        cfg = _FAST.with_overrides(pool_deadline_s=0.5)
        plan = FaultPlan({(0, 0, 0): "hang"}, hang_s=20.0)
        with faults.inject(plan):
            out = beta_partition_ampc(
                g, 9, store="columnar", workers=2, min_pool_games=1,
                config=cfg,
            )
        assert out.partition.layers == oracle.partition.layers
        rec = out.round_recovery
        assert rec["deadline_kills"] >= 1
        assert rec["respawns"] >= 1
        assert rec["retries"] >= 1

    def test_slow_but_under_deadline_is_just_slow(self, fresh_pool_env):
        # A nap shorter than the deadline is a success, not a kill.
        g = _graph()
        oracle = beta_partition_ampc(g, 9, store="columnar", workers=1)
        plan = FaultPlan({(0, 0, 0): "slow"}, slow_s=0.2)
        with faults.inject(plan):
            out = beta_partition_ampc(
                g, 9, store="columnar", workers=2, min_pool_games=1,
                config=_FAST,
            )
        assert out.partition.layers == oracle.partition.layers
        assert out.round_recovery["deadline_kills"] == 0
        assert out.round_recovery["retries"] == 0


class TestDegradedToSerial:
    def test_every_attempt_faulting_degrades_bit_identically(
        self, fresh_pool_env
    ):
        # rate=1.0 with no attempts gate: the pool can never succeed, so
        # after max_shard_retries the supervisor runs every shard chain
        # inline on the driver — and the round must still be exact.
        g = _graph()
        oracle = beta_partition_ampc(g, 9, store="columnar", workers=1)
        with faults.inject(FaultPlan(seed=5, rate=1.0, kinds=("crash",))):
            out = beta_partition_ampc(
                g, 9, store="columnar", workers=2, min_pool_games=1,
                config=_FAST,
            )
        assert out.partition.layers == oracle.partition.layers
        rec = out.round_recovery
        assert rec["degraded_shards"] > 0
        assert rec["retries"] > 0

    def test_degraded_fabric_keeps_comm_exact(self, fresh_pool_env):
        g = _graph()
        oracle = beta_partition_ampc(
            g, 9, store="columnar", workers=1,
            transport="message", shards=3,
        )
        with faults.inject(FaultPlan(seed=5, rate=1.0, kinds=("crash",))):
            out = beta_partition_ampc(
                g, 9, store="columnar", workers=2, min_pool_games=1,
                transport="message", shards=3, config=_FAST,
            )
        assert out.partition.layers == oracle.partition.layers
        assert _counts(out.round_comm) == _counts(oracle.round_comm)
        assert out.max_held_words == oracle.max_held_words
        assert out.round_recovery["degraded_shards"] > 0

    def test_pool_survives_degradation_for_next_run(self, fresh_pool_env):
        g = _graph()
        with faults.inject(FaultPlan(seed=5, rate=1.0, kinds=("crash",))):
            beta_partition_ampc(
                g, 9, store="columnar", workers=2, min_pool_games=1,
                config=_FAST,
            )
        # Degradation is per-dispatch, not a pool death sentence: the
        # next clean run uses the pool again with zero recovery.
        with faults.inject(None):
            out = beta_partition_ampc(
                g, 9, store="columnar", workers=2, min_pool_games=1,
            )
        assert out.round_recovery["degraded_shards"] == 0
        assert out.round_recovery["retries"] == 0


class TestTeardownHygiene:
    @pytest.mark.parametrize(
        "kinds",
        [("exit",), ("shm-detach",), ("crash", "exit", "garbage")],
    )
    def test_no_orphans_after_fault_schedule(self, kinds, fresh_pool_env):
        # Whatever the schedule breaks — dead workers, dropped shm
        # attachments, broken executors — nothing may leak: every
        # /dev/shm segment unlinked, every worker reaped after close.
        before = _shm_segments()
        plan = FaultPlan(seed=17, rate=0.5, attempts=2, kinds=kinds)
        with faults.inject(plan):
            beta_partition_ampc(
                _graph(), 9, store="columnar", workers=2, min_pool_games=1,
                config=_FAST,
            )
        assert _shm_segments() <= before
        close_shared_pools()
        assert multiprocessing.active_children() == []

    def test_close_shared_pools_double_close(self, fresh_pool_env):
        # Regression: atexit runs close_shared_pools after a test (or a
        # service shutdown hook) may already have closed everything —
        # including pools that just tore down a broken executor.  Both
        # the second close and a close of an already-torn-down pool must
        # be clean no-ops.
        pool = shared_pool(2)
        pool._ensure_executor()
        pool._teardown_executor()  # simulate a mid-round respawn point
        close_shared_pools()
        close_shared_pools()  # the atexit double-close
        assert pool.closed
        assert _SHARED_POOLS == {}
        assert multiprocessing.active_children() == []

    def test_submit_time_broken_executor_is_recovered(self, fresh_pool_env):
        # A worker can die *between* two submissions of one dispatch, in
        # which case executor.submit raises BrokenProcessPool
        # synchronously instead of returning a failed future.  Breaking
        # the executor ahead of the run makes that race deterministic:
        # the supervisor must reap, respawn, and still finish exactly.
        g = _graph()
        oracle = beta_partition_ampc(g, 9, store="columnar", workers=1)
        pool = shared_pool(2)
        executor = pool._ensure_executor()
        executor.submit(int).result(timeout=30)  # spawn the lazy workers
        procs = list(executor._processes.values())
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.join()
        with pytest.raises(BrokenProcessPool):
            # No worker is left, so this future can only fail; once it
            # does, the executor is flagged broken and the *next*
            # submit — the supervisor's — raises synchronously.
            executor.submit(int).result(timeout=30)
        with faults.inject(None):
            out = beta_partition_ampc(
                g, 9, store="columnar", workers=2, min_pool_games=1,
                config=_FAST,
            )
        assert out.partition.layers == oracle.partition.layers
        rec = out.round_recovery
        assert rec["respawns"] >= 1
        assert rec["retries"] >= 1

    def test_persistently_broken_submit_degrades_instead_of_dropping(
        self, fresh_pool_env, monkeypatch
    ):
        # Regression: when *every* submit of a pass raises
        # BrokenProcessPool synchronously (an executor broken by a prior
        # round, or the last shard after its siblings degraded), the
        # supervisor ends the pass with nothing in flight while the lost
        # shards sit re-queued in `pending`.  An early `break` there
        # dropped them — never delivered, never degraded, no error — and
        # the round completed with a wrong partition.  The loop must
        # instead keep draining `pending` until each shard is delivered
        # or runs inline as degraded.
        pool = shared_pool(2)
        monkeypatch.setattr(pool, "_ensure_executor", lambda: None)

        def submit(executor, key, fault_key, plan):
            raise BrokenProcessPool("permanently broken")

        delivered = []
        with faults.inject(None):
            pool._run_supervised(
                2,
                submit,
                inline=lambda key: ("inline", key),
                deliver=lambda key, result, others: delivered.append(
                    (key, result, others)
                ),
                verify=lambda result: None,
                config=_FAST,
            )
        assert sorted(delivered) == [
            # others_running reflects the degraded shards still queued
            # behind this one (exactly-once, overlap-accounted).
            (0, ("inline", 0), True),
            (1, ("inline", 1), False),
        ]
        assert pool.recovery["degraded_shards"] == 2
        assert pool.recovery["respawns"] >= 1
        assert not pool.closed

    def test_teardown_executor_keeps_pool_open(self, fresh_pool_env):
        pool = shared_pool(2)
        pool._ensure_executor()
        pool._teardown_executor()
        assert not pool.closed  # self-healing, not shutdown
        assert pool._executor is None
        pool._ensure_executor()  # respawns lazily
        assert pool._executor is not None
        close_shared_pools()
