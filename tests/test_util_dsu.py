"""Tests for disjoint-set union."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.dsu import DisjointSetUnion


class TestBasics:
    def test_initial_state(self):
        dsu = DisjointSetUnion(5)
        assert dsu.components == 5
        assert all(dsu.find(i) == i for i in range(5))

    def test_union_merges(self):
        dsu = DisjointSetUnion(4)
        assert dsu.union(0, 1)
        assert dsu.connected(0, 1)
        assert dsu.components == 3

    def test_union_same_set_returns_false(self):
        dsu = DisjointSetUnion(3)
        dsu.union(0, 1)
        assert not dsu.union(1, 0)
        assert dsu.components == 2

    def test_transitive_connectivity(self):
        dsu = DisjointSetUnion(5)
        dsu.union(0, 1)
        dsu.union(1, 2)
        assert dsu.connected(0, 2)
        assert not dsu.connected(0, 3)

    def test_set_size(self):
        dsu = DisjointSetUnion(6)
        dsu.union(0, 1)
        dsu.union(1, 2)
        assert dsu.set_size(2) == 3
        assert dsu.set_size(5) == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DisjointSetUnion(-1)


class TestInvariant:
    @given(
        st.lists(
            st.tuples(st.integers(0, 19), st.integers(0, 19)),
            max_size=60,
        )
    )
    def test_components_count_matches_reference(self, unions):
        n = 20
        dsu = DisjointSetUnion(n)
        # Reference: naive label propagation.
        labels = list(range(n))
        for a, b in unions:
            dsu.union(a, b)
            la, lb = labels[a], labels[b]
            if la != lb:
                labels = [la if x == lb else x for x in labels]
        assert dsu.components == len(set(labels))
        for a in range(n):
            for b in range(a + 1, n):
                assert dsu.connected(a, b) == (labels[a] == labels[b])
