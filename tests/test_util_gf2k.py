"""Tests for GF(2^k) field arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.gf2k import GF2kField, _is_irreducible


class TestFieldConstruction:
    @pytest.mark.parametrize("k", list(range(1, 17)) + [20, 24, 32])
    def test_modulus_is_irreducible(self, k):
        field = GF2kField(k)
        assert field.modulus.bit_length() == k + 1
        assert _is_irreducible(field.modulus, k)

    def test_unsupported_degree_rejected(self):
        with pytest.raises(ValueError):
            GF2kField(0)
        with pytest.raises(ValueError):
            GF2kField(33)


class TestSmallFieldExhaustive:
    """GF(8) is small enough to verify the field axioms exhaustively."""

    def setup_method(self):
        self.f = GF2kField(3)

    def test_multiplication_commutative(self):
        f = self.f
        for a in range(8):
            for b in range(8):
                assert f.mul(a, b) == f.mul(b, a)

    def test_multiplication_associative(self):
        f = self.f
        for a in range(8):
            for b in range(8):
                for c in range(8):
                    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))

    def test_distributive(self):
        f = self.f
        for a in range(8):
            for b in range(8):
                for c in range(8):
                    assert f.mul(a, b ^ c) == f.mul(a, b) ^ f.mul(a, c)

    def test_one_is_identity(self):
        for a in range(8):
            assert self.f.mul(a, 1) == a

    def test_zero_annihilates(self):
        for a in range(8):
            assert self.f.mul(a, 0) == 0

    def test_nonzero_elements_form_group(self):
        # Every nonzero element has an inverse; products of nonzero are
        # nonzero (no zero divisors).
        f = self.f
        for a in range(1, 8):
            inv = f.inverse(a)
            assert f.mul(a, inv) == 1
            for b in range(1, 8):
                assert f.mul(a, b) != 0

    def test_multiplication_by_unit_is_bijective(self):
        f = self.f
        for a in range(1, 8):
            image = {f.mul(a, b) for b in range(8)}
            assert image == set(range(8))


class TestLargerFields:
    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    @settings(max_examples=50)
    def test_gf65536_commutes_and_distributes(self, a, b):
        f = GF2kField(16)
        assert f.mul(a, b) == f.mul(b, a)
        assert f.mul(a, b ^ 1) == f.mul(a, b) ^ f.mul(a, 1)

    @given(st.integers(1, 2**12 - 1))
    @settings(max_examples=30)
    def test_inverse_roundtrip(self, a):
        f = GF2kField(12)
        assert f.mul(a, f.inverse(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF2kField(8).inverse(0)

    def test_pow_matches_repeated_mul(self):
        f = GF2kField(8)
        a = 0x57
        acc = 1
        for e in range(10):
            assert f.pow(a, e) == acc
            acc = f.mul(acc, a)

    def test_fermat_exponent(self):
        # a^(2^k - 1) = 1 for nonzero a.
        f = GF2kField(10)
        for a in (1, 2, 3, 1000, 1023):
            assert f.pow(a, f.order - 1) == 1


class TestMulMatrix:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60)
    def test_matrix_rows_reproduce_multiplication(self, s, w):
        f = GF2kField(8)
        rows = f.mul_matrix_rows(w)
        product = f.mul(s, w)
        for i, row in enumerate(rows):
            expected_bit = (product >> i) & 1
            parity = bin(row & s).count("1") % 2
            assert parity == expected_bit

    def test_matrix_of_one_is_identity(self):
        f = GF2kField(6)
        rows = f.mul_matrix_rows(1)
        assert rows == [1 << i for i in range(6)]
