"""Tests for the array-backed ColumnStore and the batched round API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ampc.columnar import ColumnStore
from repro.ampc.dds import EMPTY, DataStore
from repro.ampc.machine import MachineContext, SpaceExceeded
from repro.ampc.simulator import AMPCSimulator


def _loaded_store(n=5, name="D0") -> ColumnStore:
    """A store holding the path 0-1-2-3 plus isolated vertex 4."""
    store = ColumnStore(n, name=name)
    offsets = np.array([0, 1, 3, 5, 6, 6], dtype=np.int64)
    targets = np.array([1, 0, 2, 1, 3, 2], dtype=np.int64)
    store.load_residual_csr(np.arange(n), offsets, targets)
    return store


class TestScalarContract:
    """ColumnStore must honor the DataStore scalar semantics exactly."""

    def test_deg_and_adj_reads(self):
        store = _loaded_store()
        assert store.read(("deg", 1)) == 2
        assert store.read(("deg", 4)) == 0
        assert store.read(("adj", 1, 0)) == 0
        assert store.read(("adj", 1, 1)) == 2
        assert store.read(("adj", 1, 2)) is EMPTY
        assert store.read(("adj", 4, 0)) is EMPTY

    def test_absent_key_returns_empty(self):
        store = ColumnStore(3)
        assert store.read("missing") is EMPTY
        assert store.read(("deg", 0)) is EMPTY
        assert store.read(("layer", 2)) is EMPTY

    def test_generic_keys_fall_back_to_dict_semantics(self):
        store = ColumnStore(3)
        store.write("k", 1)
        store.write("k", 2)
        assert store.count("k") == 2
        assert store.read_indexed("k", 0) == 1
        assert store.read_indexed("k", 1) == 2
        assert store.read_indexed("k", 2) is EMPTY
        with pytest.raises(KeyError):
            store.read("k")
        store.reduce_per_key(min)
        assert store.read("k") == 1

    def test_scalar_deg_writes_hit_the_column(self):
        store = ColumnStore(4)
        store.write(("deg", 2), 7)
        assert store.read(("deg", 2)) == 7
        assert ("deg", 2) in store
        assert store.total_words() == 1

    def test_column_shadowing_raises_instead_of_diverging(self):
        """Mixed scalar/bulk writes on one key must fail loud, not lie."""
        store = _loaded_store()
        with pytest.raises(NotImplementedError):
            store.write(("adj", 0, 0), 7)
        store.fold_layer_proposals(np.array([2]), np.array([1.0]))
        with pytest.raises(NotImplementedError):
            store.write(("layer", 2), 0)
        # And the reverse order: fallback key, then bulk install over it.
        store2 = ColumnStore(3)
        store2.write(("adj", 0, 0), 7)
        with pytest.raises(NotImplementedError):
            store2.load_residual_csr(
                np.arange(3),
                np.array([0, 1, 2, 2], dtype=np.int64),
                np.array([1, 0], dtype=np.int64),
            )
        store3 = ColumnStore(3)
        store3.write(("layer", 1), 4)
        with pytest.raises(NotImplementedError):
            store3.fold_layer_proposals(np.array([0]), np.array([0.0]))

    def test_install_layer_column_is_guarded(self):
        store = ColumnStore(3)
        store.write(("layer", 2), 0.0)  # parked in the fallback
        with pytest.raises(NotImplementedError):
            store.install_layer_column(np.full(3, np.inf), np.zeros(3, np.int64))
        store2 = ColumnStore(3)
        store2.fold_layer_proposals(np.array([1]), np.array([0.0]))
        with pytest.raises(NotImplementedError):
            store2.install_layer_column(np.full(3, np.inf), np.zeros(3, np.int64))

    def test_non_min_reducer_on_folded_layers_raises(self):
        store = ColumnStore(3)
        store.fold_layer_proposals(np.array([1, 1]), np.array([2.0, 1.0]))
        with pytest.raises(NotImplementedError):
            store.reduce_per_key(max)
        store.reduce_per_key(min)  # the advertised reducer still works
        assert store.read(("layer", 1)) == 1
        # Single-proposal columns reduce as a no-op under any reducer.
        store4 = ColumnStore(3)
        store4.fold_layer_proposals(np.array([0]), np.array([5.0]))
        store4.reduce_per_key(max)
        assert store4.read(("layer", 0)) == 5

    def test_numpy_integer_vertex_keys_hit_the_columns(self):
        """np.int64 ids (e.g. from flatnonzero) are the same dict key."""
        store = _loaded_store()
        store.fold_layer_proposals(np.array([2]), np.array([1.0]))
        store.reduce_per_key(min)
        v = np.int64(1)
        assert store.read(("deg", v)) == 2
        assert store.read(("adj", v, np.int64(0))) == 0
        assert store.read(("layer", np.int64(2))) == 1
        assert store.count(("layer", np.int64(2))) == 1
        assert ("deg", np.int64(4)) in store
        store2 = ColumnStore(4)
        store2.write(("deg", np.int64(3)), 7)
        assert store2.read(("deg", 3)) == 7

    def test_non_int_deg_values_keep_dict_semantics(self):
        """Floats/strings under column-eligible keys must not be coerced."""
        store = ColumnStore(4)
        ref = DataStore()
        for key, value in [
            (("deg", 0), 2.7),
            (("deg", 1), "payload"),
            (("deg", 2), 5),      # int first: column...
            (("deg", 2), 0.5),    # ...then float: migrate, both kept
        ]:
            store.write(key, value)
            ref.write(key, value)
        assert store.read(("deg", 0)) == 2.7
        assert store.read(("deg", 1)) == "payload"
        with pytest.raises(KeyError):
            store.read(("deg", 2))
        for key in [("deg", 0), ("deg", 1), ("deg", 2)]:
            assert store.count(key) == ref.count(key)
            for i in range(3):
                assert store.read_indexed(key, i) == ref.read_indexed(key, i)
        assert store.total_words() == ref.total_words()

    def test_scalar_deg_double_write_keeps_multivalue_error(self):
        store = ColumnStore(4)
        store.write(("deg", 2), 7)
        store.write(("deg", 2), 8)
        with pytest.raises(KeyError):
            store.read(("deg", 2))
        assert store.count(("deg", 2)) == 2

    def test_layer_column_reads(self):
        store = ColumnStore(4)
        store.fold_layer_proposals(
            np.array([1, 3, 1]), np.array([2.0, 0.0, 1.0])
        )
        assert store.count(("layer", 1)) == 2
        with pytest.raises(KeyError):
            store.read(("layer", 1))  # unreduced multi-value
        store.reduce_per_key(min)
        assert store.read(("layer", 1)) == 1
        assert store.read(("layer", 3)) == 0
        assert store.read(("layer", 0)) is EMPTY

    def test_contains_and_len(self):
        store = _loaded_store()
        assert ("deg", 0) in store
        assert ("adj", 1, 1) in store
        assert ("adj", 1, 5) not in store
        assert len(store) == 5 + 6  # five deg words + six adj words

    def test_items_cover_every_family(self):
        store = ColumnStore(2)
        store.load_residual_csr(
            np.arange(2),
            np.array([0, 1, 2], dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
        )
        store.fold_layer_proposals(np.array([0]), np.array([0.0]))
        store.write("aux", 9)
        keys = list(store.keys())
        assert ("deg", 0) in keys and ("deg", 1) in keys
        assert ("adj", 0, 0) in keys and ("adj", 1, 0) in keys
        assert ("layer", 0) in keys
        assert "aux" in keys
        assert store.total_words() == 2 + 2 + 1 + 1

    def test_machine_context_runs_against_columns(self):
        """The scalar MachineContext is store-agnostic."""
        previous = _loaded_store()
        target = ColumnStore(5, name="D1")
        ctx = MachineContext(
            machine_id=1, previous=previous, target=target,
            space_limit=100, strict=True,
        )
        deg = ctx.read(("deg", 1))
        nbrs = [ctx.read(("adj", 1, i)) for i in range(deg)]
        assert nbrs == [0, 2]
        ctx.write(("layer", 1), 0)
        assert ctx.reads == 3 and ctx.writes == 1
        # Scalar layer writes take the dict fallback with full semantics.
        assert target.read(("layer", 1)) == 0
        assert target.read_indexed(("layer", 1), 0) == 0

    def test_layer_assignments_bulk_getter(self):
        store = ColumnStore(6)
        store.fold_layer_proposals(
            np.array([5, 2, 5]), np.array([1.0, 0.0, 3.0])
        )
        vs, lays = store.layer_assignments()
        assert vs.tolist() == [2, 5]
        assert lays.tolist() == [0.0, 1.0]


class TestDictParityRandomized:
    """Random op sequences: ColumnStore == DataStore observationally."""

    def test_random_scalar_traffic(self):
        rng = np.random.default_rng(7)
        col = ColumnStore(10)
        ref = DataStore()
        keys = [("deg", int(v)) for v in range(10)] + ["a", ("b", 1), "c"]
        for __ in range(300):
            key = keys[int(rng.integers(len(keys)))]
            op = int(rng.integers(3))
            if op == 0:
                value = int(rng.integers(100))
                col.write(key, value)
                ref.write(key, value)
            elif op == 1:
                try:
                    got = col.read(key)
                except KeyError:
                    with pytest.raises(KeyError):
                        ref.read(key)
                    continue
                assert got == ref.read(key)
            else:
                index = int(rng.integers(3))
                assert col.read_indexed(key, index) == ref.read_indexed(key, index)
        assert col.total_words() == ref.total_words()
        for key in keys:
            assert col.count(key) == ref.count(key)
            assert (key in col) == (key in ref)


class TestRoundVectorized:
    def test_requires_columnar_backend(self):
        sim = AMPCSimulator(10, store="dict")
        with pytest.raises(TypeError):
            sim.round_vectorized(np.arange(3), lambda batch: None)

    def test_kernel_stats_match_scalar_round(self):
        """The same logical round through both APIs: identical RoundStats."""
        def build(store_kind):
            sim = AMPCSimulator(
                100, store=store_kind,
                num_vertices=4 if store_kind == "columnar" else None,
            )
            offsets = np.array([0, 1, 2, 2, 2], dtype=np.int64)
            targets = np.array([1, 0], dtype=np.int64)
            if store_kind == "columnar":
                sim.port_residual_csr(np.arange(4), offsets, targets)
            else:
                sim.load_input([
                    (("deg", 0), 1), (("adj", 0, 0), 1),
                    (("deg", 1), 1), (("adj", 1, 0), 0),
                    (("deg", 2), 0), (("deg", 3), 0),
                ])
            return sim

        scalar = build("dict")

        def task(v):
            def run(ctx):
                if ctx.read(("deg", v)) <= 0:
                    ctx.write(("layer", v), 0)
            return v, run

        scalar.round([task(v) for v in range(4)], reducer=min)

        vector = build("columnar")

        def kernel(batch):
            alive = batch.machine_ids
            offsets, __ = batch.previous.adjacency_csr()
            degs = offsets[alive + 1] - offsets[alive]
            assigned = alive[degs <= 0]
            batch.target.fold_layer_proposals(
                assigned, np.zeros(len(assigned))
            )
            batch.account(
                np.ones(len(alive), dtype=np.int64),
                (degs <= 0).astype(np.int64),
            )

        store = vector.round_vectorized(np.arange(4), kernel, reducer=min)
        a, b = scalar.stats.rounds[0], vector.stats.rounds[0]
        for field in ("machines_active", "max_reads", "max_writes",
                      "total_reads", "total_writes", "store_words"):
            assert getattr(a, field) == getattr(b, field), field
        vs, lays = store.layer_assignments()
        assert vs.tolist() == [2, 3]
        assert lays.tolist() == [0.0, 0.0]

    def test_strict_budget_raises_named_machine(self):
        sim = AMPCSimulator(
            4, delta=0.5, strict_space=True, store="columnar", num_vertices=3
        )
        sim.port_residual_csr(
            np.arange(3),
            np.array([0, 0, 0, 0], dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )

        def kernel(batch):
            batch.account(
                np.array([1, 99, 1], dtype=np.int64),
                np.zeros(3, dtype=np.int64),
            )

        with pytest.raises(SpaceExceeded, match="machine 1"):
            sim.round_vectorized(np.arange(3), kernel)
        # The failed round leaves no partial state behind.
        assert len(sim.stats.rounds) == 0
        assert len(sim.stores) == 1
