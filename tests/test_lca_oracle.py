"""Tests for the probe-counting graph oracle."""

from __future__ import annotations

import pytest

from repro.graphs.generators import path_graph, star_graph
from repro.lca.oracle import GraphOracle


class TestOracle:
    def test_degree_probe_counts(self):
        oracle = GraphOracle(path_graph(4))
        assert oracle.degree(1) == 2
        assert oracle.stats.degree_probes == 1
        assert oracle.stats.total == 1

    def test_neighbor_probe_counts(self):
        oracle = GraphOracle(path_graph(4))
        assert oracle.neighbor(1, 0) == 0
        assert oracle.neighbor(1, 1) == 2
        assert oracle.stats.neighbor_probes == 2

    def test_explore_costs_degree_plus_edges(self):
        oracle = GraphOracle(star_graph(6))
        nbrs = oracle.explore(0)
        assert sorted(nbrs) == [1, 2, 3, 4, 5]
        assert oracle.stats.total == 1 + 5

    def test_invalid_index_raises(self):
        oracle = GraphOracle(path_graph(3))
        with pytest.raises(IndexError):
            oracle.neighbor(0, 5)

    def test_reset(self):
        oracle = GraphOracle(path_graph(3))
        oracle.explore(1)
        oracle.reset()
        assert oracle.stats.total == 0

    def test_num_vertices_is_free(self):
        oracle = GraphOracle(path_graph(7))
        assert oracle.num_vertices == 7
        assert oracle.stats.total == 0
