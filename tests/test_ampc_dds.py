"""Tests for the distributed data store."""

from __future__ import annotations

import pytest

from repro.ampc.dds import EMPTY, DataStore


class TestDataStore:
    def test_single_value_roundtrip(self):
        store = DataStore()
        store.write("k", 42)
        assert store.read("k") == 42

    def test_absent_key_returns_empty(self):
        store = DataStore()
        assert store.read("missing") is EMPTY
        assert not EMPTY  # falsy sentinel

    def test_multi_value_semantics(self):
        store = DataStore()
        store.write("k", 1)
        store.write("k", 2)
        assert store.count("k") == 2
        assert store.read_indexed("k", 0) == 1
        assert store.read_indexed("k", 1) == 2
        assert store.read_indexed("k", 2) is EMPTY

    def test_single_read_of_multivalue_raises(self):
        store = DataStore()
        store.write("k", 1)
        store.write("k", 2)
        with pytest.raises(KeyError):
            store.read("k")

    def test_reduce_per_key(self):
        store = DataStore()
        store.write("a", 3)
        store.write("a", 1)
        store.write("b", 9)
        store.reduce_per_key(min)
        assert store.read("a") == 1
        assert store.read("b") == 9

    def test_len_and_total_words(self):
        store = DataStore()
        store.write("a", 1)
        store.write("a", 2)
        store.write("b", 3)
        assert len(store) == 3
        assert store.total_words() == 3

    def test_contains_and_keys(self):
        store = DataStore()
        store.write(("x", 1), "v")
        assert ("x", 1) in store
        assert list(store.keys()) == [("x", 1)]
