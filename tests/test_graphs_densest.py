"""Tests for exact densest subgraph (Goldberg reduction)."""

from __future__ import annotations

import itertools
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.densest import densest_subgraph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph


def _brute_force_density(g: Graph) -> Fraction:
    best = Fraction(0)
    vertices = list(g.vertices())
    for size in range(1, len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            sub, __ = g.subgraph(list(subset))
            best = max(best, Fraction(sub.num_edges, size))
    return best


class TestKnownValues:
    def test_clique(self):
        density, witness = densest_subgraph(complete_graph(6))
        assert density == Fraction(15, 6)
        assert sorted(witness) == list(range(6))

    def test_path(self):
        density, __ = densest_subgraph(path_graph(5))
        assert density == Fraction(4, 5)

    def test_cycle(self):
        density, witness = densest_subgraph(cycle_graph(7))
        assert density == Fraction(1)
        assert len(witness) == 7

    def test_star(self):
        density, __ = densest_subgraph(star_graph(9))
        assert density == Fraction(8, 9)

    def test_clique_plus_pendants(self):
        # K5 with 10 pendant vertices: densest part is the clique alone.
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        edges += [(i % 5, 5 + i) for i in range(10)]
        g = Graph.from_edges(15, edges)
        density, witness = densest_subgraph(g)
        assert density == Fraction(10, 5)
        assert sorted(witness) == [0, 1, 2, 3, 4]

    def test_edgeless(self):
        density, witness = densest_subgraph(Graph.from_edges(4, []))
        assert density == Fraction(0)
        assert witness == [0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            densest_subgraph(Graph.from_edges(0, []))


class TestAgainstBruteForce:
    @given(
        st.integers(min_value=1, max_value=7).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
                    .filter(lambda e: e[0] != e[1]),
                    max_size=12,
                ),
            )
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_density_matches_enumeration(self, data):
        n, edges = data
        g = Graph.from_edges(n, edges)
        density, witness = densest_subgraph(g)
        assert density == _brute_force_density(g)
        # The witness must achieve the reported density.
        sub, __ = g.subgraph(witness)
        assert Fraction(sub.num_edges, sub.num_vertices) == density
