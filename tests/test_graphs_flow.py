"""Tests for Dinic max-flow."""

from __future__ import annotations

import pytest

from repro.graphs.flow import FlowNetwork


class TestMaxFlow:
    def test_single_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 5)
        assert net.max_flow(0, 1) == 5

    def test_series_bottleneck(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 10)
        net.add_edge(1, 2, 3)
        assert net.max_flow(0, 2) == 3

    def test_parallel_paths_add(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 4)
        net.add_edge(1, 3, 4)
        net.add_edge(0, 2, 6)
        net.add_edge(2, 3, 5)
        assert net.max_flow(0, 3) == 9

    def test_classic_clrs_network(self):
        # CLRS figure 26.6 instance; known max flow 23.
        net = FlowNetwork(6)
        s, v1, v2, v3, v4, t = range(6)
        net.add_edge(s, v1, 16)
        net.add_edge(s, v2, 13)
        net.add_edge(v1, v3, 12)
        net.add_edge(v2, v1, 4)
        net.add_edge(v2, v4, 14)
        net.add_edge(v3, v2, 9)
        net.add_edge(v3, t, 20)
        net.add_edge(v4, v3, 7)
        net.add_edge(v4, t, 4)
        assert net.max_flow(s, t) == 23

    def test_disconnected_zero_flow(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 2)
        net.add_edge(2, 3, 2)
        assert net.max_flow(0, 3) == 0

    def test_flow_requires_augmenting_via_residual(self):
        # The greedy-blocking instance: needs residual (backward) edges.
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1)
        net.add_edge(0, 2, 1)
        net.add_edge(1, 2, 1)
        net.add_edge(1, 3, 1)
        net.add_edge(2, 3, 1)
        assert net.max_flow(0, 3) == 2

    def test_source_equals_sink_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.max_flow(0, 0)

    def test_negative_capacity_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1)

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork(1)


class TestMinCut:
    def test_cut_side_after_flow(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1)
        net.add_edge(1, 2, 5)
        net.max_flow(0, 2)
        side = net.min_cut_source_side(0)
        assert side == {0}  # bottleneck at the first edge

    def test_cut_value_equals_flow(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3)
        net.add_edge(0, 2, 2)
        net.add_edge(1, 3, 2)
        net.add_edge(2, 3, 3)
        flow = net.max_flow(0, 3)
        side = net.min_cut_source_side(0)
        assert 0 in side and 3 not in side
        assert flow == 4
