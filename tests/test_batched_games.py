"""Unit-level coverage of the lockstep batched coin-game engine.

The differential matrices in ``tests/test_parallel_equivalence`` pin the
engine against the dict oracle end-to-end; these tests aim at the
engine's own moving parts — the shared-CSR transpose map behind row
patches, cohort blocking, the coin-scale escape hatch (ejection), the
huge-β escalation fallback, the batched ``query_all`` port the E1/F2
sweeps run on, and :class:`~repro.core.columnar_rounds.GameCache`
behavior under the batched engine (degree-snapshot staleness, replay
parity, eviction).  All of them exercise the incremental-replay arena
implicitly (it is on by default); its dedicated cone-invalidation
coverage lives in ``tests/test_incremental_replay.py``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.ampc import faults
import repro.core.batched_games as batched_games
import repro.core.columnar_rounds as columnar_rounds
from repro.ampc.pool import _SHARED_POOLS, close_shared_pools, resolve_workers
from repro.core.batched_games import (
    csr_transpose_positions,
    play_games_batched,
)
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.core.columnar_rounds import (
    GameCache,
    play_coin_game,
    residual_adjacency_lists,
    run_games_batched_with_fallback,
)
from repro.experiments.e1_lca_quality import run_lca_quality
from repro.experiments.f2_exploration_ablation import run_exploration_ablation
from repro.graphs.generators import (
    complete_ary_tree,
    path_graph,
    preferential_attachment,
    random_gnm,
    star_graph,
    union_of_random_forests,
)
from repro.lca.coin_game import fixed_coin_scale, max_provable_layer
from repro.lca.partial_partition_lca import PartialPartitionLCA

_INF = float("inf")


def _assert_same_outcome(a, b):
    assert a.partition.layers == b.partition.layers
    assert a.rounds == b.rounds
    for ra, rb in zip(a.simulator.stats.rounds, b.simulator.stats.rounds):
        for field in (
            "machines_active", "max_reads", "max_writes",
            "total_reads", "total_writes", "store_words",
        ):
            assert getattr(ra, field) == getattr(rb, field), field


def _play_both_engines(graph, beta, x, want_records=False):
    """One full-fleet run per engine; returns (batched, scalar) outputs.

    The batched side goes through the kernel's fallback wrapper, so
    legitimately ejected games replay scalar-side exactly as a round
    would run them.
    """
    offsets, targets = graph.csr()
    n = graph.num_vertices
    clip = max_provable_layer(x, beta)
    horizon = 4 * (clip + 2)
    scale = fixed_coin_scale(beta, horizon)
    roots = np.arange(n, dtype=np.int64)

    out_layer = np.full(n, _INF)
    out_count = np.zeros(n, dtype=np.int64)
    reads, writes, records = run_games_batched_with_fallback(
        offsets, targets, roots, x=x, beta=beta, clip=clip, horizon=horizon,
        scale=scale, out_layer=out_layer, out_count=out_count,
        want_records=want_records,
    )

    adj = residual_adjacency_lists(offsets, targets)
    ref_layer = [_INF] * n
    ref_count = [0] * n
    ref_reads = np.zeros(n, dtype=np.int64)
    ref_writes = np.zeros(n, dtype=np.int64)
    ref_records = []
    for v in range(n):
        ref_reads[v], ref_writes[v], record = play_coin_game(
            adj, v, x, beta, clip, horizon, scale,
            ref_layer, ref_count, want_records,
        )
        ref_records.append(record)
    return (
        (reads, writes, records, out_layer, out_count),
        (ref_reads, ref_writes, ref_records, ref_layer, ref_count),
    )


class TestEngineAgainstScalar:
    @pytest.mark.parametrize("maker,beta,x", [
        (lambda: random_gnm(120, 240, seed=5), 9, 100),
        (lambda: complete_ary_tree(4, 4), 3, 16),
        (lambda: preferential_attachment(150, 2, seed=11), 6, 49),
        (lambda: star_graph(25), 2, 9),
    ])
    def test_reads_writes_folds_and_records_match(self, maker, beta, x):
        graph = maker()
        got, ref = _play_both_engines(graph, beta, x, want_records=True)
        reads, writes, records, out_layer, out_count = got
        ref_reads, ref_writes, ref_records, ref_layer, ref_count = ref
        assert np.array_equal(reads, ref_reads)
        assert np.array_equal(writes, ref_writes)
        assert np.array_equal(out_layer, np.array(ref_layer))
        assert np.array_equal(out_count, np.asarray(ref_count))
        for got_rec, want_rec in zip(records, ref_records):
            assert got_rec[0] == want_rec[0]  # explored, exploration order
            assert sorted(got_rec[1]) == sorted(want_rec[1])  # clipped proof
            assert got_rec[2:] == want_rec[2:]  # (reads, writes)

    def test_isolated_and_tiny_games(self):
        # Star center has deg > β+1 (σ-ranked F); leaves have deg 1.
        graph = star_graph(12)
        got, ref = _play_both_engines(graph, 1, 4)
        assert np.array_equal(got[0], ref[0])
        assert np.array_equal(got[4], np.asarray(ref[4]))

    def test_empty_batch(self):
        offsets = np.array([0, 1, 2], dtype=np.int64)
        targets = np.array([1, 0], dtype=np.int64)
        info = play_games_batched(
            offsets, targets, np.empty(0, dtype=np.int64),
            x=4, beta=2, clip=1, horizon=12, scale=12,
            out_layer=np.full(2, _INF), out_count=np.zeros(2, dtype=np.int64),
        )
        assert not info.reads.size and not info.ejected.size


class TestTransposePositions:
    def test_reverse_entry_roundtrip(self):
        graph = random_gnm(200, 400, seed=3)
        offsets, targets = graph.csr()
        tp = csr_transpose_positions(offsets, targets)
        src = np.repeat(np.arange(200), np.diff(offsets))
        # Entry p is (src[p] -> targets[p]); its transpose holds the
        # reversed pair, and transposing twice is the identity.
        assert np.array_equal(src[tp], targets)
        assert np.array_equal(targets[tp], src)
        assert np.array_equal(tp[tp], np.arange(len(targets)))


class TestCohortBlocking:
    def test_tiny_cohorts_change_nothing(self, monkeypatch):
        # Force many game-index blocks even on a small fleet: blocking
        # must be invisible to every observable.
        graph = random_gnm(90, 180, seed=8)
        oracle = beta_partition_ampc(graph, 9, store="dict")
        monkeypatch.setattr(columnar_rounds, "COHORT_GAMES", 7)
        blocked = beta_partition_ampc(graph, 9, store="columnar")
        _assert_same_outcome(oracle, blocked)


class TestEscapeHatch:
    def test_ejected_games_replay_exactly(self, monkeypatch):
        # A tiny word budget forces coin-scale ejections; the scalar
        # fallback must keep the whole round bit-identical.
        graph = preferential_attachment(150, 2, seed=11)
        oracle = beta_partition_ampc(graph, 6, store="dict")
        monkeypatch.setattr(batched_games, "SCALE_LIMIT", 1 << 24)
        ejected_counts = []
        original = batched_games.play_games_batched

        def spy(*args, **kwargs):
            info = original(*args, **kwargs)
            ejected_counts.append(int(info.ejected.size))
            return info

        monkeypatch.setattr(
            columnar_rounds, "play_games_batched", spy
        )
        hatch = beta_partition_ampc(graph, 6, store="columnar")
        assert sum(ejected_counts) > 0, "budget never forced an ejection"
        _assert_same_outcome(oracle, hatch)

    def test_no_scaled_representation_at_all(self):
        # x so large that not even scale 1 fits the budget: every game
        # takes the escape hatch (Fraction coins in the deep-horizon
        # scalar fallback) and the outcome still matches the oracle.
        graph = path_graph(4)
        oracle = beta_partition_ampc(graph, 1, x=2**61, store="dict")
        batched = beta_partition_ampc(graph, 1, x=2**61, store="columnar")
        _assert_same_outcome(oracle, batched)

    def test_huge_beta_uses_python_lcm_fold(self):
        # β+1 > 36 routes escalation factors through Python bigint lcm
        # (int64 np.lcm would wrap); the observables must not notice.
        graph = star_graph(50)
        oracle = beta_partition_ampc(graph, 40, store="dict")
        batched = beta_partition_ampc(graph, 40, store="columnar")
        _assert_same_outcome(oracle, batched)


class TestWorkersAutoAndThreshold:
    def test_resolve_auto(self):
        assert resolve_workers("auto") >= 1
        assert resolve_workers(None) >= 1  # default is now auto
        assert resolve_workers(3) == 3
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_env_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert resolve_workers(None) == resolve_workers("auto")

    def test_small_rounds_skip_pool_dispatch(self):
        # Below the minimum-game threshold the pool must never fork:
        # its executor stays unmaterialized for the whole partition.
        close_shared_pools()
        graph = random_gnm(80, 160, seed=2)
        outcome = beta_partition_ampc(graph, 9, store="columnar", workers=2)
        assert not outcome.partition.is_partial(range(80))
        pool = _SHARED_POOLS.get(2)
        assert pool is not None and pool._executor is None
        close_shared_pools()

    def test_threshold_override_dispatches(self):
        close_shared_pools()
        graph = random_gnm(80, 160, seed=2)
        beta_partition_ampc(
            graph, 9, store="columnar", workers=2, min_pool_games=1
        )
        pool = _SHARED_POOLS.get(2)
        assert pool is not None and pool._executor is not None
        close_shared_pools()

    def test_workers_auto_accepted_end_to_end(self):
        graph = random_gnm(60, 120, seed=4)
        auto = beta_partition_ampc(graph, 9, store="columnar", workers="auto")
        serial = beta_partition_ampc(graph, 9, store="columnar", workers=1)
        assert auto.partition.layers == serial.partition.layers
        assert auto.workers == resolve_workers("auto")
        close_shared_pools()


class TestQueryAllPort:
    @pytest.mark.parametrize("maker,beta,x", [
        (lambda: union_of_random_forests(120, 2, seed=55), 6, 49),
        (lambda: preferential_attachment(120, 2, seed=5), 6, 49),
    ])
    def test_batched_query_all_matches_scalar(self, maker, beta, x):
        graph = maker()
        merged_b, res_b = PartialPartitionLCA(
            graph, x=x, beta=beta, engine="batched"
        ).query_all()
        merged_s, res_s = PartialPartitionLCA(
            graph, x=x, beta=beta, engine="scalar"
        ).query_all()
        assert merged_b.layers == merged_s.layers
        for v in graph.vertices():
            a, b = res_b[v], res_s[v]
            assert a.root == b.root
            assert a.layer == b.layer
            assert a.queries == b.queries
            assert a.super_iterations == b.super_iterations
            assert a.edges_seen == b.edges_seen
            assert a.explored == b.explored
            assert a.proof.layers == b.proof.layers

    def test_strict_mode_stays_scalar(self):
        graph = path_graph(12)
        lca = PartialPartitionLCA(graph, x=4, beta=1, strict=True)
        merged, results = lca.query_all(vertices=[0, 5])
        assert set(results) == {0, 5}
        assert merged.is_valid(graph, 1)

    def test_e1_rows_engine_invariant(self):
        batched = run_lca_quality(ns=(80,), alphas=(1, 2), xs=(16,))
        scalar = run_lca_quality(
            ns=(80,), alphas=(1, 2), xs=(16,), engine="scalar"
        )
        assert batched == scalar

    def test_f2_rows_engine_invariant(self):
        batched = run_exploration_ablation(
            beta=3, chain_length=3, fan=15, decoy_fan=15
        )
        scalar = run_exploration_ablation(
            beta=3, chain_length=3, fan=15, decoy_fan=15, engine="scalar"
        )
        assert batched == scalar


class TestGameCacheUnderBatchedEngine:
    def test_degree_snapshot_staleness_drops_record(self):
        cache = GameCache()
        cache.store(7, ([7, 8, 9], [(7, 0), (8, 1)], 5, 2))
        cache.advance([0, 0, 0, 0, 0, 0, 0, 2, 2, 1])
        alive = [True] * 10
        # Same degrees: replayable.
        assert cache.lookup(7, alive, [0, 0, 0, 0, 0, 0, 0, 2, 2, 1])
        # A member's residual degree changed: stale, dropped on sight.
        cache.store(7, ([7, 8, 9], [(7, 0), (8, 1)], 5, 2))
        assert cache.lookup(7, alive, [0, 0, 0, 0, 0, 0, 0, 2, 1, 1]) is None
        assert len(cache) == 0

    def test_dead_member_invalidates(self):
        cache = GameCache()
        cache.store(3, ([3, 4], [(3, 0)], 3, 1))
        cache.advance([0, 0, 0, 1, 1])
        alive = [True, True, True, True, False]  # member 4 was assigned
        assert cache.lookup(3, alive, [0, 0, 0, 1, 1]) is None
        assert len(cache) == 0

    def test_eviction_after_residual_shrink(self):
        cache = GameCache()
        for root in range(5):
            cache.store(root, ([root], [(root, 0)], 1, 1))
        cache.evict([1, 3])
        assert len(cache) == 3
        cache.advance([0] * 5)
        assert cache.lookup(1, [True] * 5, [0] * 5) is None  # evicted
        assert cache.lookup(0, [True] * 5, [0] * 5) is not None

    def test_cache_hit_replay_parity_matches_oracle(self):
        # β = 1, x = 2 strips two layers off each end of a path per
        # round; interior games replay their cached fixed point.
        g = path_graph(40)
        oracle = beta_partition_ampc(g, 1, x=2, store="dict")
        batched = beta_partition_ampc(
            g, 1, x=2, store="columnar", engine="batched"
        )
        scalar = beta_partition_ampc(
            g, 1, x=2, store="columnar", engine="scalar"
        )
        assert batched.rounds >= 3
        assert batched.game_cache_hits > 0
        # Cache decisions are a pure function of records and degree
        # snapshots, which both engines must produce identically.
        assert batched.game_cache_hits == scalar.game_cache_hits
        _assert_same_outcome(oracle, batched)

    def test_cross_round_invalidation_on_deep_tree(self):
        # Multi-round instance: residual shrink + frontier degree drift
        # invalidate some records while untouched subtrees replay.
        beta = 3
        g = complete_ary_tree(beta + 1, 4)
        oracle = beta_partition_ampc(g, beta, x=beta + 1, store="dict")
        batched = beta_partition_ampc(
            g, beta, x=beta + 1, store="columnar", engine="batched"
        )
        assert batched.rounds >= 2
        _assert_same_outcome(oracle, batched)

    def test_cache_parity_with_pool_and_batched_engine(self):
        g = path_graph(40)
        oracle = beta_partition_ampc(g, 1, x=2, store="dict")
        pooled = beta_partition_ampc(
            g, 1, x=2, store="columnar", engine="batched", workers=2,
            min_pool_games=1,
        )
        assert pooled.game_cache_hits > 0
        _assert_same_outcome(oracle, pooled)
        close_shared_pools()


@pytest.fixture(autouse=True)
def _no_worker_env(monkeypatch):
    """These tests pin worker counts explicitly; isolate from CI's env."""
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    yield
    # No test may leak an in-process injected fault plan.
    assert faults._ACTIVE_SET is False
