"""EngineConfig: one snapshot of every engine knob, env-overridable.

The knobs keep living as module constants next to the code they tune
(tests monkeypatch them there); :meth:`EngineConfig.from_env` snapshots
them at call time with ``REPRO_*`` environment overrides applied, and
the frozen dataclass threads through kernel, pool, and fabric so one
run agrees with itself everywhere.  All knobs are throughput/policy
levers: no observable may depend on any of them.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.ampc import messaging, pool
from repro.ampc.engine_config import EngineConfig
from repro.core import batched_games, columnar_rounds
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.graphs.generators import random_gnm, union_of_random_forests


class TestFromEnv:
    def test_defaults_snapshot_module_constants(self):
        cfg = EngineConfig.from_env(env={})
        assert cfg.cohort_games == columnar_rounds.COHORT_GAMES
        assert cfg.min_pool_games == pool.MIN_POOL_GAMES
        assert cfg.min_pool_games_batched == pool.MIN_POOL_GAMES_BATCHED
        assert cfg.replay_cone_cutoff == batched_games.REPLAY_CONE_CUTOFF
        assert cfg.replay_poor_streak == batched_games.REPLAY_POOR_STREAK
        assert cfg.message_cap_words == messaging.MESSAGE_CAP_WORDS
        assert cfg.shard_budget_words is None
        assert cfg.ghost_cache_words == messaging.GHOST_CACHE_WORDS
        assert cfg.max_shard_retries == pool.MAX_SHARD_RETRIES
        assert cfg.retry_backoff_s == pool.RETRY_BACKOFF_S
        assert cfg.pool_deadline_s == pool.POOL_DEADLINE_S
        assert cfg.pool_deadline_scale == pool.POOL_DEADLINE_SCALE
        assert cfg.pool_degrade is pool.POOL_DEGRADE

    def test_env_overrides_parse_and_win(self):
        cfg = EngineConfig.from_env(env={
            "REPRO_COHORT_GAMES": "128",
            "REPRO_MIN_POOL_GAMES": "7",
            "REPRO_MIN_POOL_GAMES_BATCHED": "99",
            "REPRO_REPLAY_CONE_CUTOFF": "0.5",
            "REPRO_REPLAY_POOR_STREAK": "3",
            "REPRO_MESSAGE_CAP_WORDS": "4096",
            "REPRO_SHARD_BUDGET_WORDS": "123456",
            "REPRO_GHOST_CACHE_WORDS": "4096",
            "REPRO_MAX_SHARD_RETRIES": "5",
            "REPRO_RETRY_BACKOFF_S": "0.25",
            "REPRO_POOL_DEADLINE_S": "12.5",
            "REPRO_POOL_DEADLINE_SCALE": "8",
            "REPRO_POOL_DEGRADE": "off",
        })
        assert cfg.cohort_games == 128
        assert cfg.min_pool_games == 7
        assert cfg.min_pool_games_batched == 99
        assert cfg.replay_cone_cutoff == 0.5
        assert cfg.replay_poor_streak == 3
        assert cfg.message_cap_words == 4096
        assert cfg.shard_budget_words == 123456
        assert cfg.ghost_cache_words == 4096
        assert cfg.max_shard_retries == 5
        assert cfg.retry_backoff_s == 0.25
        assert cfg.pool_deadline_s == 12.5
        assert cfg.pool_deadline_scale == 8.0
        assert cfg.pool_degrade is False

    def test_blank_values_fall_back(self):
        cfg = EngineConfig.from_env(env={"REPRO_COHORT_GAMES": "  "})
        assert cfg.cohort_games == columnar_rounds.COHORT_GAMES

    def test_engine_env_override(self):
        assert EngineConfig.from_env(env={}).engine is None
        cfg = EngineConfig.from_env(env={"REPRO_ENGINE": "scalar"})
        assert cfg.engine == "scalar"

    def test_repro_engine_selects_engine(self, monkeypatch):
        # engine=None reads REPRO_ENGINE; an explicit engine= wins.
        g = random_gnm(60, 120, seed=3)
        monkeypatch.setenv("REPRO_ENGINE", "scalar")
        out = beta_partition_ampc(g, 9, store="columnar")
        assert out.engine == "scalar"
        explicit = beta_partition_ampc(g, 9, store="columnar",
                                       engine="batched")
        assert explicit.engine == "batched"
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            beta_partition_ampc(g, 9, store="columnar")

    @pytest.mark.parametrize("name", [
        "REPRO_COHORT_GAMES",
        "REPRO_MIN_POOL_GAMES",
        "REPRO_MIN_POOL_GAMES_BATCHED",
        "REPRO_REPLAY_POOR_STREAK",
        "REPRO_MESSAGE_CAP_WORDS",
        "REPRO_SHARD_BUDGET_WORDS",
    ])
    def test_nonpositive_int_overrides_rejected_at_parse_time(self, name):
        # A zero/negative knob used to pass straight through int() and
        # fail deep inside the engine (or silently degenerate); now the
        # error fires here and names the variable and value.
        for raw in ("0", "-3"):
            with pytest.raises(ValueError, match=name) as err:
                EngineConfig.from_env(env={name: raw})
            assert raw in str(err.value)

    @pytest.mark.parametrize("name", [
        "REPRO_COHORT_GAMES", "REPRO_REPLAY_CONE_CUTOFF", "REPRO_ENGINE",
    ])
    def test_non_numeric_overrides_name_the_variable(self, name):
        with pytest.raises(ValueError, match=name) as err:
            EngineConfig.from_env(env={name: "banana"})
        assert "banana" in str(err.value)

    def test_cone_cutoff_range_enforced(self):
        with pytest.raises(ValueError, match="REPRO_REPLAY_CONE_CUTOFF"):
            EngineConfig.from_env(env={"REPRO_REPLAY_CONE_CUTOFF": "1.5"})
        with pytest.raises(ValueError, match="REPRO_REPLAY_CONE_CUTOFF"):
            EngineConfig.from_env(env={"REPRO_REPLAY_CONE_CUTOFF": "-0.1"})
        cfg = EngineConfig.from_env(env={"REPRO_REPLAY_CONE_CUTOFF": "0.0"})
        assert cfg.replay_cone_cutoff == 0.0

    def test_message_cap_floor_matches_fabric(self):
        # The fabric rejects cap_words < 4 (one row header); the env
        # parse must fail the same way instead of deferring the crash.
        with pytest.raises(ValueError, match="REPRO_MESSAGE_CAP_WORDS"):
            EngineConfig.from_env(env={"REPRO_MESSAGE_CAP_WORDS": "2"})

    def test_ghost_cache_words_allows_zero_rejects_negative(self):
        # 0 is meaningful (cache disabled), so the knob gets a >= 0
        # floor instead of the shared positive-int parse.
        cfg = EngineConfig.from_env(env={"REPRO_GHOST_CACHE_WORDS": "0"})
        assert cfg.ghost_cache_words == 0
        with pytest.raises(ValueError, match="REPRO_GHOST_CACHE_WORDS"):
            EngineConfig.from_env(env={"REPRO_GHOST_CACHE_WORDS": "-1"})

    def test_supervisor_knob_validation(self):
        # retries may be 0 (fail fast) but never negative.
        cfg = EngineConfig.from_env(env={"REPRO_MAX_SHARD_RETRIES": "0"})
        assert cfg.max_shard_retries == 0
        with pytest.raises(ValueError, match="REPRO_MAX_SHARD_RETRIES"):
            EngineConfig.from_env(env={"REPRO_MAX_SHARD_RETRIES": "-1"})
        # backoff 0 is valid (no sleep); negative is not.
        cfg = EngineConfig.from_env(env={"REPRO_RETRY_BACKOFF_S": "0"})
        assert cfg.retry_backoff_s == 0.0
        with pytest.raises(ValueError, match="REPRO_RETRY_BACKOFF_S"):
            EngineConfig.from_env(env={"REPRO_RETRY_BACKOFF_S": "-0.1"})
        # a zero deadline would kill every shard instantly.
        with pytest.raises(ValueError, match="REPRO_POOL_DEADLINE_S"):
            EngineConfig.from_env(env={"REPRO_POOL_DEADLINE_S": "0"})
        # scale < 1 would kill shards faster than the slowest sibling.
        with pytest.raises(ValueError, match="REPRO_POOL_DEADLINE_SCALE"):
            EngineConfig.from_env(env={"REPRO_POOL_DEADLINE_SCALE": "0.5"})

    def test_pool_degrade_boolean_parse(self):
        for raw, want in (
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("false", False), ("No", False), ("off", False),
        ):
            cfg = EngineConfig.from_env(env={"REPRO_POOL_DEGRADE": raw})
            assert cfg.pool_degrade is want
        with pytest.raises(ValueError, match="REPRO_POOL_DEGRADE"):
            EngineConfig.from_env(env={"REPRO_POOL_DEGRADE": "maybe"})

    def test_misspelled_engine_rejected_at_parse_time(self):
        # "compilde" used to thread silently until partition time.
        with pytest.raises(ValueError, match="REPRO_ENGINE") as err:
            EngineConfig.from_env(env={"REPRO_ENGINE": "compilde"})
        assert "compilde" in str(err.value)
        assert "compiled" in str(err.value)  # the valid choices are named

    def test_monkeypatched_constants_flow_through(self, monkeypatch):
        # Defaults are read at call time, so tests that pin a module
        # constant see their pin honored by from_env().
        monkeypatch.setattr(columnar_rounds, "COHORT_GAMES", 77)
        monkeypatch.setattr(batched_games, "REPLAY_CONE_CUTOFF", 0.9)
        cfg = EngineConfig.from_env(env={})
        assert cfg.cohort_games == 77
        assert cfg.replay_cone_cutoff == 0.9

    def test_frozen_and_with_overrides(self):
        cfg = EngineConfig.from_env(env={})
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.cohort_games = 1
        alt = cfg.with_overrides(cohort_games=5, shard_budget_words=42)
        assert alt.cohort_games == 5
        assert alt.shard_budget_words == 42
        assert cfg.cohort_games == columnar_rounds.COHORT_GAMES


class TestThreading:
    def test_min_pool_games_for_prefers_config(self):
        cfg = EngineConfig.from_env(env={}).with_overrides(
            min_pool_games=11, min_pool_games_batched=22
        )
        assert pool.min_pool_games_for("scalar", cfg) == 11
        assert pool.min_pool_games_for("batched", cfg) == 22
        assert pool.min_pool_games_for("compiled", cfg) == 22
        assert pool.min_pool_games_for("scalar") == pool.MIN_POOL_GAMES
        assert (
            pool.min_pool_games_for("batched") == pool.MIN_POOL_GAMES_BATCHED
        )
        assert (
            pool.min_pool_games_for("compiled")
            == pool.MIN_POOL_GAMES_BATCHED
        )

    def test_knobs_do_not_change_observables(self):
        # A deliberately odd cohort size and replay gate must be
        # invisible: bit-identical partitions and per-round stats.
        g = random_gnm(80, 160, seed=5)
        base = beta_partition_ampc(g, 5, store="columnar")
        tuned = beta_partition_ampc(
            g, 5, store="columnar",
            config=EngineConfig.from_env().with_overrides(
                cohort_games=3, replay_cone_cutoff=0.01, replay_poor_streak=1
            ),
        )
        assert tuned.partition.layers == base.partition.layers
        for ra, rb in zip(
            base.simulator.stats.rounds, tuned.simulator.stats.rounds
        ):
            assert (ra.total_reads, ra.total_writes, ra.store_words) == (
                rb.total_reads, rb.total_writes, rb.store_words
            )

    def test_env_shard_budget_reaches_the_guard(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_BUDGET_WORDS", "50")
        g = union_of_random_forests(200, 1, seed=7)
        with pytest.raises(messaging.MemoryGuardError):
            beta_partition_ampc(
                g, 3, x=4, store="columnar", transport="message", shards=2
            )

    def test_env_ghost_cache_reaches_the_fabric(self, monkeypatch):
        g = random_gnm(300, 900, seed=23)  # 5 lca rounds at beta=4/x=8
        kw = dict(x=8, store="columnar", transport="message", shards=3,
                  min_pool_games=1)
        monkeypatch.setenv("REPRO_GHOST_CACHE_WORDS", "0")
        off = beta_partition_ampc(g, 4, **kw)
        assert all(c["ghost_cache_held_words"] == 0 for c in off.round_comm)
        monkeypatch.setenv("REPRO_GHOST_CACHE_WORDS", "65536")
        on = beta_partition_ampc(g, 4, **kw)
        assert sum(c["ghost_cache_hits"] for c in on.round_comm) > 0
        assert on.partition.layers == off.partition.layers

    def test_explicit_budget_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_BUDGET_WORDS", "50")
        g = union_of_random_forests(40, 1, seed=1)
        out = beta_partition_ampc(
            g, 3, x=4, store="columnar", transport="message", shards=2,
            shard_budget=10**9,
        )
        assert out.max_held_words > 50  # env budget would have tripped
