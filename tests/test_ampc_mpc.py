"""Tests for the MPC broadcast-tree simulator."""

from __future__ import annotations

import pytest

from repro.ampc.mpc import MPCSimulator


class TestMPCSimulator:
    def test_sharding_respects_space(self):
        mpc = MPCSimulator(input_size=100, delta=0.5)
        shards = mpc.shard(list(range(45)))
        assert all(len(s) <= mpc.space_limit for s in shards)
        assert sum(len(s) for s in shards) == 45

    def test_empty_shard_list(self):
        mpc = MPCSimulator(input_size=100)
        assert mpc.shard([]) == [[]]

    def test_aggregate_sums_correct(self):
        mpc = MPCSimulator(input_size=100)
        result = mpc.aggregate_sums([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        assert result == [9.0, 12.0]

    def test_aggregate_charges_tree_depth(self):
        mpc = MPCSimulator(input_size=10000, delta=0.5)
        before = mpc.rounds
        mpc.aggregate_sums([[1.0]])
        assert mpc.rounds == before + mpc.tree_depth

    def test_mismatched_vectors_rejected(self):
        mpc = MPCSimulator(input_size=100)
        with pytest.raises(ValueError):
            mpc.aggregate_sums([[1.0], [1.0, 2.0]])

    def test_broadcast_and_local_round(self):
        mpc = MPCSimulator(input_size=100)
        mpc.broadcast(words=3)
        mpc.charge_local_round()
        assert mpc.rounds == mpc.tree_depth + 1
        assert mpc.max_message_words == 3

    def test_tree_depth_constant_in_delta(self):
        # Depth ~ log(P)/log(arity) = O(1/delta): small for these sizes.
        mpc = MPCSimulator(input_size=10**6, delta=0.5)
        assert mpc.tree_depth <= 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MPCSimulator(0)
        with pytest.raises(ValueError):
            MPCSimulator(10, delta=0)
