"""Tests for degeneracy, forest packing, and exact arboricity."""

from __future__ import annotations

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.arboricity import (
    core_numbers,
    degeneracy,
    degeneracy_order,
    density_lower_bound,
    exact_arboricity,
    forest_partition,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_2d,
    hypercube,
    path_graph,
    random_tree,
    star_graph,
    union_of_random_forests,
)
from repro.graphs.graph import Graph
from repro.graphs.validation import is_forest


def _brute_force_arboricity(g: Graph) -> int:
    """Nash-Williams Definition 3.1 by subset enumeration (tiny n only)."""
    best = 0
    vertices = list(g.vertices())
    for size in range(2, len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            sub, __ = g.subgraph(list(subset))
            if sub.num_edges:
                best = max(best, math.ceil(sub.num_edges / (size - 1)))
    return best


class TestDegeneracy:
    def test_tree_degeneracy_one(self):
        assert degeneracy(random_tree(30, seed=1)) == 1

    def test_cycle_degeneracy_two(self):
        assert degeneracy(cycle_graph(10)) == 2

    def test_clique_degeneracy(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_grid_degeneracy_two(self):
        assert degeneracy(grid_2d(5, 5)) == 2

    def test_empty_graph(self):
        assert degeneracy(Graph.from_edges(0, [])) == 0
        assert degeneracy(Graph.from_edges(3, [])) == 0

    def test_core_numbers_monotone_in_subgraph(self):
        g = complete_graph(5)
        cores = core_numbers(g)
        assert cores == [4] * 5

    def test_degeneracy_order_is_permutation(self):
        g = union_of_random_forests(50, 2, seed=2)
        order, cores = degeneracy_order(g)
        assert sorted(order) == list(range(50))
        assert len(cores) == 50

    def test_order_property(self):
        # Each vertex has <= degeneracy neighbors later in the order.
        g = union_of_random_forests(60, 3, seed=3)
        order, __ = degeneracy_order(g)
        d = degeneracy(g)
        position = {v: i for i, v in enumerate(order)}
        for v in g.vertices():
            later = sum(1 for w in g.neighbors(v) if position[int(w)] > position[v])
            assert later <= d

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_exact_smallest_last_randomized(self, seed):
        """Every peeled vertex has minimum exact residual degree."""
        from repro.graphs.generators import random_gnm

        n = 2 + seed % 40
        m = min((seed // 7) % (2 * n), n * (n - 1) // 2)
        g = random_gnm(n, m, seed=seed)
        order, __ = degeneracy_order(g)
        assert sorted(order) == list(range(n))
        alive = [True] * n
        residual = [g.degree(v) for v in range(n)]
        for v in order:
            minimum = min(residual[u] for u in range(n) if alive[u])
            assert residual[v] == minimum
            alive[v] = False
            for w in g.neighbors(v):
                w = int(w)
                if alive[w]:
                    residual[w] -= 1

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_cores_match_bucket_queue_oracle(self, seed):
        """Core numbers equal the seed BucketQueue peeler's, exactly."""
        from repro.graphs.generators import random_gnm
        from repro.util.bucket_queue import BucketQueue

        n = 2 + seed % 40
        m = min((seed // 7) % (3 * n), n * (n - 1) // 2)
        g = random_gnm(n, m, seed=seed)
        queue = BucketQueue(max(g.max_degree(), 1))
        remaining = [g.degree(v) for v in range(n)]
        for v in range(n):
            queue.insert(v, remaining[v])
        cores_ref = [0] * n
        removed = [False] * n
        current = 0
        while len(queue):
            v, key = queue.pop_min()
            current = max(current, key)
            cores_ref[v] = current
            removed[v] = True
            for w in g.neighbors(v):
                w = int(w)
                if not removed[w]:
                    remaining[w] -= 1
                    queue.decrease_key(w, remaining[w])
        __, cores = degeneracy_order(g)
        assert cores == cores_ref


class TestForestPartition:
    def test_tree_needs_one_forest(self):
        g = random_tree(25, seed=4)
        forests = forest_partition(g, 1)
        assert forests is not None
        assert sum(len(f) for f in forests) == g.num_edges

    def test_cycle_needs_two(self):
        g = cycle_graph(8)
        assert forest_partition(g, 1) is None
        forests = forest_partition(g, 2)
        assert forests is not None
        for f in forests:
            assert is_forest(8, f)

    def test_partition_covers_all_edges_disjointly(self):
        g = union_of_random_forests(40, 3, seed=5)
        k = exact_arboricity(g)
        forests = forest_partition(g, k)
        assert forests is not None
        all_edges = sorted(e for f in forests for e in f)
        assert all_edges == sorted(g.edges())

    def test_each_class_is_a_forest(self):
        g = complete_graph(7)
        forests = forest_partition(g, 4)  # alpha(K7) = ceil(21/6) = 4
        assert forests is not None
        for f in forests:
            assert is_forest(7, f)

    def test_k_zero_with_edges_impossible(self):
        assert forest_partition(cycle_graph(3), 0) is None

    def test_k_zero_without_edges_fine(self):
        assert forest_partition(Graph.from_edges(3, []), 0) == []

    def test_extra_forests_allowed(self):
        g = path_graph(5)
        forests = forest_partition(g, 3)
        assert forests is not None
        assert len(forests) == 3


class TestExactArboricity:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(6), 1),
            (cycle_graph(7), 2),
            (complete_graph(4), 2),
            (complete_graph(5), 3),
            (complete_graph(6), 3),
            (complete_graph(7), 4),
            (star_graph(10), 1),
            (grid_2d(4, 4), 2),
        ],
    )
    def test_known_values(self, graph, expected):
        assert exact_arboricity(graph) == expected

    def test_hypercube_q4(self):
        # Q4: 32 edges, 16 vertices; alpha = ceil(32/15) = 3 (known).
        assert exact_arboricity(hypercube(4)) == 3

    def test_empty(self):
        assert exact_arboricity(Graph.from_edges(5, [])) == 0

    def test_sandwich_against_degeneracy(self):
        for seed in range(3):
            g = union_of_random_forests(40, 2 + seed, seed=seed)
            alpha = exact_arboricity(g)
            d = degeneracy(g)
            assert alpha <= max(d, 1)
            assert alpha >= (d + 1) / 2

    @given(
        st.integers(min_value=2, max_value=7).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
                    .filter(lambda e: e[0] != e[1]),
                    max_size=12,
                ),
            )
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force_nash_williams(self, data):
        n, edges = data
        g = Graph.from_edges(n, edges)
        if g.num_edges == 0:
            assert exact_arboricity(g) == 0
        else:
            assert exact_arboricity(g) == _brute_force_arboricity(g)


class TestDensityLowerBound:
    def test_simple(self):
        assert density_lower_bound(complete_graph(4)) == 2
        assert density_lower_bound(path_graph(5)) == 1
        assert density_lower_bound(Graph.from_edges(3, [])) == 0

    def test_never_exceeds_exact(self):
        for seed in range(3):
            g = union_of_random_forests(30, 3, seed=seed)
            assert density_lower_bound(g) <= exact_arboricity(g)
