"""Tests for PartialBetaPartition (Definition 3.5) and min-merge (Lemma 4.10)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    complete_graph,
    path_graph,
    union_of_random_forests,
)
from repro.partition.beta_partition import INFINITY, PartialBetaPartition, merge_min
from repro.partition.induced import induced_beta_partition
from repro.util.rng import SplitMix64


class TestBasics:
    def test_layer_defaults_to_infinity(self):
        p = PartialBetaPartition({0: 1})
        assert p.layer(0) == 1
        assert p.layer(5) == INFINITY

    def test_size_counts_distinct_finite_layers(self):
        p = PartialBetaPartition({0: 0, 1: 0, 2: 3, 3: INFINITY})
        assert p.size() == 2
        assert p.max_layer() == 3

    def test_max_layer_empty(self):
        assert PartialBetaPartition({}).max_layer() == -1

    def test_assigned_and_infinity_vertices(self):
        p = PartialBetaPartition({0: 1, 1: INFINITY})
        assert p.assigned_vertices() == [0]
        assert p.infinity_vertices([0, 1, 2]) == [1, 2]

    def test_is_partial(self):
        p = PartialBetaPartition({0: 0, 1: 1})
        assert not p.is_partial([0, 1])
        assert p.is_partial([0, 1, 2])

    def test_copy_independent(self):
        p = PartialBetaPartition({0: 1})
        q = p.copy()
        q.layers[0] = 2
        assert p.layer(0) == 1


class TestValidation:
    def test_valid_two_layer_path(self):
        g = path_graph(3)
        p = PartialBetaPartition({0: 0, 1: 1, 2: 0})
        assert p.is_valid(g, 1)

    def test_infinity_neighbors_count_as_higher(self):
        # Vertex 1 of a K3 has two neighbors at infinity: violates beta=1.
        g = complete_graph(3)
        p = PartialBetaPartition({1: 0})
        assert p.violations(g, 1) == [1]
        assert p.is_valid(g, 2)

    def test_infinity_vertices_never_violate(self):
        g = complete_graph(5)
        p = PartialBetaPartition({})
        assert p.is_valid(g, 1)

    def test_is_valid_on_subset_ignores_outside(self):
        g = complete_graph(4)
        # 0 and 1 layered; their 2 outside-subset neighbors don't count.
        p = PartialBetaPartition({0: 0, 1: 1})
        assert p.is_valid_on_subset(g, 1, {0, 1})
        assert not p.is_valid_on_subset(g, 1, {0, 1, 2})  # 2 unlayered


class TestMergeMin:
    def test_pointwise_minimum(self):
        a = PartialBetaPartition({0: 3, 1: 1})
        b = PartialBetaPartition({0: 2, 2: 0})
        merged = merge_min([a, b])
        assert merged.layer(0) == 2
        assert merged.layer(1) == 1
        assert merged.layer(2) == 0

    def test_finite_wins_over_missing(self):
        a = PartialBetaPartition({0: 5})
        merged = merge_min([a, PartialBetaPartition({})])
        assert merged.layer(0) == 5

    def test_accepts_plain_mappings(self):
        merged = merge_min([{0: 2}, {0: 1}])
        assert merged.layer(0) == 1

    @given(st.integers(min_value=0, max_value=2**31), st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_lemma_4_10_merge_is_partial_beta_partition(self, seed, k):
        """Min-merge of induced partitions stays a partial β-partition."""
        g = union_of_random_forests(60, 2, seed=seed)
        beta = 2 * 2 + 1
        rng = SplitMix64(seed)
        parts = []
        for _ in range(k):
            subset = [v for v in g.vertices() if rng.random() < 0.5]
            parts.append(induced_beta_partition(g, subset, beta))
        merged = merge_min(parts)
        assert merged.is_valid(g, beta)
        # Moreover: finite in any input => finite in the merge.
        for part in parts:
            for v in part.assigned_vertices():
                assert merged.layer(v) != INFINITY
