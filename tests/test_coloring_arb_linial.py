"""Tests for Arb-Linial coloring on low-out-degree orientations."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.arb_linial import (
    ampc_rounds_for_simulation,
    arb_linial_coloring,
    linial_undirected_coloring,
)
from repro.core.orientation import orient_by_partition
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    union_of_random_forests,
)
from repro.graphs.validation import is_proper_coloring
from repro.partition.induced import natural_beta_partition


def _setup(alpha: int, seed: int, n: int = 80):
    g = union_of_random_forests(n, alpha, seed=seed)
    beta = math.ceil(3 * alpha)
    p = natural_beta_partition(g, beta)
    return g, beta, orient_by_partition(g, p)


class TestArbLinial:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_proper_and_quadratic_palette(self, seed, alpha):
        g, beta, ori = _setup(alpha, seed)
        res = arb_linial_coloring(ori, beta)
        assert is_proper_coloring(g, res.colors)
        assert all(0 <= c < res.num_colors for c in res.colors)
        # O(beta^2): the final palette is q^2 with q = O(beta).
        assert res.num_colors <= 16 * (beta + 1) ** 2

    def test_log_star_rounds(self):
        g, beta, ori = _setup(2, seed=1, n=200)
        res = arb_linial_coloring(ori, beta)
        assert res.local_rounds <= 6  # log* flavored

    def test_rejects_under_reported_beta(self):
        g, beta, ori = _setup(2, seed=2)
        with pytest.raises(ValueError):
            arb_linial_coloring(ori, 1)

    def test_initial_colors_respected(self):
        g, beta, ori = _setup(1, seed=3)
        start = arb_linial_coloring(ori, beta)
        res = arb_linial_coloring(
            ori, beta, initial_colors=start.colors, initial_palette=start.num_colors
        )
        assert is_proper_coloring(g, res.colors)
        assert res.num_colors <= start.num_colors

    def test_invalid_initial_colors_rejected(self):
        g, beta, ori = _setup(1, seed=4)
        with pytest.raises(ValueError):
            arb_linial_coloring(ori, beta, initial_colors=[5] * g.num_vertices,
                                initial_palette=3)

    def test_schedule_palettes_decrease(self):
        g, beta, ori = _setup(2, seed=5, n=300)
        res = arb_linial_coloring(ori, beta)
        palettes = [fam.source_colors for fam in res.schedule]
        assert palettes == sorted(palettes, reverse=True)


class TestLinialUndirected:
    def test_proper_on_cycle(self):
        g = cycle_graph(20)
        res = linial_undirected_coloring(g, 2)
        assert is_proper_coloring(g, res.colors)

    def test_proper_on_clique(self):
        g = complete_graph(6)
        res = linial_undirected_coloring(g, 5)
        assert is_proper_coloring(g, res.colors)

    def test_edgeless_single_color(self):
        from repro.graphs.graph import Graph

        g = Graph.from_edges(5, [])
        res = linial_undirected_coloring(g, 0)
        assert res.colors == [0] * 5

    def test_quadratic_palette(self):
        g = union_of_random_forests(150, 2, seed=6)
        delta = g.max_degree()
        res = linial_undirected_coloring(g, delta)
        assert is_proper_coloring(g, res.colors)
        assert res.num_colors <= 16 * (delta + 1) ** 2


class TestSimulationRounds:
    def test_zero_local_rounds(self):
        assert ampc_rounds_for_simulation(0, 5, 100) == 0

    def test_big_space_collapses_to_one_round(self):
        assert ampc_rounds_for_simulation(5, 2, 2**40) == 1

    def test_small_space_one_per_round(self):
        assert ampc_rounds_for_simulation(7, 10, 10) == 7

    def test_intermediate(self):
        # fanout 4, space 64: 3 LOCAL rounds per AMPC round.
        assert ampc_rounds_for_simulation(9, 4, 64) == 3

    def test_fanout_one(self):
        assert ampc_rounds_for_simulation(5, 1, 10) == 1
