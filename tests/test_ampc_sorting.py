"""Tests for the broadcast-tree sorting primitive."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampc.mpc import MPCSimulator
from repro.ampc.sorting import broadcast_tree_sort


class TestBroadcastTreeSort:
    def test_sorts_integers(self):
        mpc = MPCSimulator(input_size=100, delta=0.5)
        result, report = broadcast_tree_sort(mpc, [5, 3, 9, 1, 1, 7])
        assert result == [1, 1, 3, 5, 7, 9]
        assert report.rounds_charged >= 2  # up-sweep + broadcast + route

    def test_sorts_by_key(self):
        mpc = MPCSimulator(input_size=64)
        items = [("b", 2), ("a", 9), ("c", 1)]
        result, __ = broadcast_tree_sort(mpc, items, key=lambda t: t[1])
        assert [t[0] for t in result] == ["c", "b", "a"]

    def test_empty_input(self):
        mpc = MPCSimulator(input_size=16)
        result, report = broadcast_tree_sort(mpc, [])
        assert result == []
        assert report.num_machines == 1

    def test_constant_rounds_regardless_of_size(self):
        small_mpc = MPCSimulator(input_size=10**2)
        large_mpc = MPCSimulator(input_size=10**4)
        __, small_report = broadcast_tree_sort(small_mpc, list(range(50))[::-1])
        __, large_report = broadcast_tree_sort(
            large_mpc, list(range(5000))[::-1]
        )
        # O(1/delta) both times, not growing with input size.
        assert large_report.rounds_charged <= small_report.rounds_charged + 4

    def test_mixed_int_float_keys_keep_exact_routing(self):
        # int64-magnitude keys one ULP from a float splitter: float64
        # promotion would misroute; the scan fallback must stay exact.
        mpc = MPCSimulator(input_size=64, delta=0.5)
        big = 2**60
        items = [big + 2**11 - 1, float(big + 2**11), big, 1.5, 2] * 7
        result, __ = broadcast_tree_sort(mpc, items)
        assert result == sorted(items)

    def test_mixed_length_tuple_keys_route_via_scan(self):
        # Ragged tuples (e.g. the DDS's own mixed key families) must take
        # the Python-scan fallback, not crash in np.asarray.
        mpc = MPCSimulator(input_size=64, delta=0.5)
        items = [("deg", 1), ("adj", 1, 0), ("adj", 0, 1), ("deg", 0)] * 8
        result, __ = broadcast_tree_sort(mpc, items)
        assert result == sorted(items)

    def test_bucket_balance_reported(self):
        mpc = MPCSimulator(input_size=400, delta=0.5)
        values = list(range(400))[::-1]
        __, report = broadcast_tree_sort(mpc, values)
        assert report.max_bucket >= 1
        assert report.within_space  # uniform data balances fine

    @given(st.lists(st.integers(-1000, 1000), max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_matches_python_sorted(self, values):
        mpc = MPCSimulator(input_size=max(len(values), 4))
        result, __ = broadcast_tree_sort(mpc, values)
        assert result == sorted(values)

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)), max_size=80))
    @settings(max_examples=20, deadline=None)
    def test_stable_semantics_by_full_key(self, pairs):
        mpc = MPCSimulator(input_size=max(len(pairs), 4))
        result, __ = broadcast_tree_sort(mpc, pairs)
        assert result == sorted(pairs)
