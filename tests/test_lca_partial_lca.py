"""Tests for the partial β-partition LCA (Lemma 4.7 / Remark 4.8)."""

from __future__ import annotations

import math

from repro.graphs.generators import union_of_random_forests
from repro.lca.partial_partition_lca import (
    PartialPartitionLCA,
    lca_success_fraction_bound,
)
from repro.partition.beta_partition import INFINITY
from repro.partition.dependency import dependency_set
from repro.partition.induced import natural_beta_partition


class TestSuccessBound:
    def test_zero_when_beta_too_small(self):
        assert lca_success_fraction_bound(64, 4, 2) == 0.0

    def test_increases_with_x(self):
        small = lca_success_fraction_bound(8, 9, 3)
        large = lca_success_fraction_bound(512, 9, 3)
        assert large >= small

    def test_never_exceeds_one(self):
        assert lca_success_fraction_bound(10**9, 30, 1) <= 1.0


class TestLCA:
    def setup_method(self):
        self.alpha = 2
        self.eps = 1.0
        self.beta = math.ceil((2 + self.eps) * self.alpha)
        self.graph = union_of_random_forests(120, self.alpha, seed=55)
        self.x = (self.beta + 1) ** 2
        self.lca = PartialPartitionLCA(self.graph, x=self.x, beta=self.beta)

    def test_query_bound(self):
        for v in range(0, 120, 13):
            res = self.lca.query(v)
            assert res.queries <= self.x**6

    def test_query_matches_natural_for_small_dependencies(self):
        natural = natural_beta_partition(self.graph, self.beta)
        for v in range(0, 120, 9):
            dep = dependency_set(self.graph, natural, v)
            res = self.lca.query(v)
            if len(dep) <= self.x**2 and natural.layer(v) <= self.lca.max_layer:
                assert res.layer == natural.layer(v)

    def test_query_all_meets_fraction_bound(self):
        merged, __ = self.lca.query_all()
        layered = [
            v for v in self.graph.vertices() if merged.layer(v) != INFINITY
        ]
        bound = lca_success_fraction_bound(self.x, self.beta, self.alpha)
        assert len(layered) / self.graph.num_vertices >= bound

    def test_merged_partition_is_valid_partial(self):
        merged, __ = self.lca.query_all()
        assert merged.is_valid(self.graph, self.beta)

    def test_merged_subset_is_beta_partition_of_induced_subgraph(self):
        merged, __ = self.lca.query_all()
        layered = {
            v for v in self.graph.vertices() if merged.layer(v) != INFINITY
        }
        assert merged.is_valid_on_subset(self.graph, self.beta, layered)

    def test_layer_count_within_cap(self):
        merged, __ = self.lca.query_all()
        assert merged.max_layer() <= self.lca.max_layer

    def test_queries_are_independent(self):
        a = self.lca.query(3)
        b = self.lca.query(3)
        assert a.layer == b.layer
        assert a.explored == b.explored

    def test_query_subset_only(self):
        merged, results = self.lca.query_all(vertices=[0, 1, 2])
        assert set(results) == {0, 1, 2}
