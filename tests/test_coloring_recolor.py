"""Tests for cross-layer greedy recoloring (Section 6.3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.recolor import (
    greedy_recolor_by_layers,
    recoloring_ampc_rounds,
)
from repro.graphs.generators import path_graph, union_of_random_forests
from repro.graphs.validation import is_proper_coloring
from repro.partition.beta_partition import PartialBetaPartition
from repro.partition.induced import natural_beta_partition


def _per_layer_greedy(graph, partition, beta):
    """A simple proper-within-layer initial coloring for tests."""
    colors = [0] * graph.num_vertices
    for v in sorted(graph.vertices()):
        taken = {
            colors[int(w)]
            for w in graph.neighbors(v)
            if partition.layer(int(w)) == partition.layer(v) and int(w) < v
        }
        c = 0
        while c in taken:
            c += 1
        colors[v] = c
    return colors


class TestRecolor:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_proper_with_beta_plus_one_colors(self, seed, alpha):
        g = union_of_random_forests(70, alpha, seed=seed)
        beta = math.ceil(3 * alpha)
        p = natural_beta_partition(g, beta)
        initial = _per_layer_greedy(g, p, beta)
        res = greedy_recolor_by_layers(g, p, initial, beta)
        assert is_proper_coloring(g, res.colors)
        assert res.num_colors <= beta + 1
        assert all(0 <= c <= beta for c in res.colors)

    def test_lowest_pick_variant(self):
        g = union_of_random_forests(50, 2, seed=1)
        beta = 6
        p = natural_beta_partition(g, beta)
        initial = _per_layer_greedy(g, p, beta)
        res = greedy_recolor_by_layers(g, p, initial, beta, pick="lowest")
        assert is_proper_coloring(g, res.colors)
        assert res.num_colors <= beta + 1

    def test_order_processes_layers_top_down(self):
        g = union_of_random_forests(40, 2, seed=2)
        beta = 6
        p = natural_beta_partition(g, beta)
        initial = _per_layer_greedy(g, p, beta)
        res = greedy_recolor_by_layers(g, p, initial, beta)
        layers_in_order = [p.layer(v) for v in res.processed_order]
        assert layers_in_order == sorted(layers_in_order, reverse=True)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_bitmap_palettes_match_blocked_set_reference(self, seed):
        """The uint-mask palette picks the same colors as neighbor sets."""
        g = union_of_random_forests(45, 2, seed=seed)
        beta = 6
        p = natural_beta_partition(g, beta)
        initial = _per_layer_greedy(g, p, beta)
        for pick in ("highest", "lowest"):
            res = greedy_recolor_by_layers(g, p, initial, beta, pick=pick)
            # Reference: the seed per-vertex blocked-set construction.
            final: list[int | None] = [None] * g.num_vertices
            palette = (
                range(beta, -1, -1) if pick == "highest" else range(beta + 1)
            )
            for v in res.processed_order:
                blocked = {
                    final[int(w)]
                    for w in g.neighbors(v)
                    if final[int(w)] is not None
                }
                final[v] = next(c for c in palette if c not in blocked)
            assert res.colors == final

    def test_initial_colors_may_exceed_beta_palette(self):
        # Section 6.4 variant: initial palette 4*beta is allowed.
        g = path_graph(6)
        p = PartialBetaPartition({v: 0 for v in range(6)})
        initial = [10, 20, 10, 20, 10, 20]
        res = greedy_recolor_by_layers(g, p, initial, beta=2)
        assert is_proper_coloring(g, res.colors)
        assert res.num_colors <= 3

    def test_unlayered_vertex_rejected(self):
        g = path_graph(3)
        p = PartialBetaPartition({0: 0, 1: 0})
        with pytest.raises(ValueError):
            greedy_recolor_by_layers(g, p, [0, 1, 0], beta=2)

    def test_improper_within_layer_rejected(self):
        g = path_graph(3)
        p = PartialBetaPartition({0: 0, 1: 0, 2: 0})
        with pytest.raises(ValueError):
            greedy_recolor_by_layers(g, p, [0, 0, 1], beta=2)

    def test_wrong_length_rejected(self):
        g = path_graph(3)
        p = PartialBetaPartition({0: 0, 1: 0, 2: 0})
        with pytest.raises(ValueError):
            greedy_recolor_by_layers(g, p, [0, 1], beta=2)


class TestRoundFormula:
    def test_zero_layers(self):
        assert recoloring_ampc_rounds(0, 5, 0.5, 100) == 0

    def test_more_layers_more_rounds(self):
        few = recoloring_ampc_rounds(4, 5, 0.5, 1000)
        many = recoloring_ampc_rounds(40, 5, 0.5, 1000)
        assert many >= few

    def test_larger_beta_more_rounds(self):
        small = recoloring_ampc_rounds(20, 3, 0.5, 10**6)
        large = recoloring_ampc_rounds(20, 300, 0.5, 10**6)
        assert large >= small
