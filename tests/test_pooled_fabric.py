"""Pooled message-fabric execution: the shard chains on the process pool.

A fabric shard's BSP round is a pure function of (residual CSR, its
roots, shard count, engine, config, budget): every row another shard
would serve it is a verbatim CSR slice.  Running the chains on the
worker pool (``transport="message"`` + ``workers > 1``) must therefore
be bit-identical to the serial fabric — which is itself bit-identical
to the shared-memory oracle — for every (engine, shards, workers)
combination: partitions, per-round stats, *and* the communication
counters and guard peaks the driver reconstructs by replaying each
worker's request trace.

Failure recovery mirrors the plain pool path: an injected worker fault
is retried by the round supervisor and the run completes bit-identically
with no orphan processes and no leaked shared-memory segments; with
recovery disabled the fault surfaces as one :class:`WorkerPoolError`;
and a :class:`MemoryGuardError` — a protocol outcome the serial fabric
raises identically — passes through without retry and without poisoning
the pool.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.ampc import faults
from repro.ampc.engine_config import EngineConfig
from repro.ampc.faults import FaultPlan
from repro.ampc.messaging import MemoryGuardError
from repro.ampc.pool import WorkerPoolError, close_shared_pools
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.graphs.generators import random_gnm, union_of_random_forests

# Keys whose values are wall-clock measurements, not protocol counts.
_TIMING_KEYS = (
    "shard_wall_s", "comm_overlap_s",
    "serve_s", "install_s", "compact_s", "play_s",
)


def _graph():
    return random_gnm(150, 400, seed=23)


def _partition(g, *, engine, workers=1, shards=None, **kw):
    return beta_partition_ampc(
        g, 6, x=25, store="columnar", engine=engine, workers=workers,
        transport="message", shards=shards, min_pool_games=1, **kw
    )


def _counts(comm: dict) -> dict:
    return {k: v for k, v in comm.items() if k not in _TIMING_KEYS}


@pytest.fixture
def fresh_pool_env():
    close_shared_pools()
    yield
    close_shared_pools()
    assert faults._ACTIVE_SET is False  # no leaked injected plan
    assert multiprocessing.active_children() == []  # no orphan workers


def _shm_segments() -> set[str]:
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


class TestPooledDifferential:
    @pytest.mark.parametrize("engine", ["scalar", "batched", "compiled"])
    @pytest.mark.parametrize("shards", [1, 2, 3, 8])
    def test_pooled_matches_serial_fabric_and_oracle(
        self, engine, shards, fresh_pool_env
    ):
        g = _graph()
        oracle = beta_partition_ampc(
            g, 6, x=25, store="columnar", engine=engine
        )
        serial = _partition(g, engine=engine, workers=1, shards=shards)
        pooled = _partition(g, engine=engine, workers=2, shards=shards)
        assert pooled.partition.layers == oracle.partition.layers
        assert pooled.partition.layers == serial.partition.layers
        for ro, rp in zip(
            oracle.simulator.stats.rounds, pooled.simulator.stats.rounds
        ):
            assert (ro.total_reads, ro.total_writes, ro.store_words) == (
                rp.total_reads, rp.total_writes, rp.store_words
            )
        # The driver's trace replay must reconstruct the serial fabric's
        # communication exactly: every word, message, sub-round, and
        # guard peak — only the wall-clock keys may differ.
        assert len(serial.round_comm) == len(pooled.round_comm)
        for cs, cp in zip(serial.round_comm, pooled.round_comm):
            assert _counts(cs) == _counts(cp)
        assert pooled.max_held_words == serial.max_held_words

    def test_workers_four_spot_check(self, fresh_pool_env):
        g = _graph()
        serial = _partition(g, engine="compiled", workers=1, shards=3)
        pooled = _partition(g, engine="compiled", workers=4, shards=3)
        assert pooled.partition.layers == serial.partition.layers
        for cs, cp in zip(serial.round_comm, pooled.round_comm):
            assert _counts(cs) == _counts(cp)
        assert pooled.max_held_words == serial.max_held_words

    def test_pooled_rounds_report_shard_wall_time(self, fresh_pool_env):
        g = _graph()
        pooled = _partition(g, engine="compiled", workers=2, shards=2)
        serial = _partition(g, engine="compiled", workers=1, shards=2)
        # Every dispatched round carries the slowest shard's in-worker
        # wall time; the serial fabric reports zero (nothing dispatched).
        assert any(c["shard_wall_s"] > 0 for c in pooled.round_comm)
        assert all(c["shard_wall_s"] == 0 for c in serial.round_comm)
        assert all(c["comm_overlap_s"] >= 0 for c in pooled.round_comm)


class TestPooledBudget:
    def test_budget_error_passes_through_and_pool_survives(
        self, fresh_pool_env
    ):
        g = union_of_random_forests(200, 1, seed=7)
        with pytest.raises(MemoryGuardError):
            beta_partition_ampc(
                g, 3, x=4, store="columnar", transport="message",
                shards=2, workers=2, min_pool_games=1, shard_budget=50,
            )
        # A budget violation is a protocol outcome, not a pool fault:
        # the same pool must serve the next (unbudgeted) run.
        out = _partition(_graph(), engine="compiled", workers=2, shards=2)
        ref = _partition(_graph(), engine="compiled", workers=1, shards=2)
        assert out.partition.layers == ref.partition.layers

    def test_budgeted_pooled_matches_serial_peaks(self, fresh_pool_env):
        g = union_of_random_forests(600, 1, seed=7)
        kw = dict(shards=16, shard_budget=40_000)
        serial = _partition(g, engine="compiled", workers=1, **kw)
        pooled = _partition(g, engine="compiled", workers=2, **kw)
        assert pooled.partition.layers == serial.partition.layers
        assert pooled.max_held_words == serial.max_held_words
        assert pooled.max_held_words <= 40_000


# First attempt of every shard faults; retries run clean.
_FIRST_ATTEMPT = dict(seed=2, rate=1.0, attempts=1)
# Recovery disabled: any fault must surface as WorkerPoolError.
_NO_RECOVERY = EngineConfig.from_env().with_overrides(
    max_shard_retries=0, retry_backoff_s=0.0, pool_degrade=False
)


class TestPooledFaults:
    def test_worker_exception_is_recovered_and_cleans_up(
        self, fresh_pool_env
    ):
        g = _graph()
        before = _shm_segments()
        with faults.inject(FaultPlan(kinds=("crash",), **_FIRST_ATTEMPT)):
            out = _partition(g, engine="compiled", workers=2, shards=3)
        ref = _partition(g, engine="compiled", workers=1, shards=3)
        assert out.partition.layers == ref.partition.layers
        assert out.round_recovery["retries"] > 0
        # The recovered pool stays alive (that's the point); the fixture
        # asserts no orphans survive close_shared_pools().
        assert _shm_segments() <= before  # no orphaned segments

    def test_slab_corruption_is_recovered_bit_identically(
        self, fresh_pool_env
    ):
        # A "slab" fault corrupts one served row slab inside the worker
        # *after* its checksum is stamped, so install_ghosts' verify
        # rejects the attempt before any ghost mutates and the retry
        # replays the whole chain clean.
        g = _graph()
        with faults.inject(FaultPlan(kinds=("slab",), **_FIRST_ATTEMPT)):
            out = _partition(g, engine="compiled", workers=2, shards=3)
        ref = _partition(g, engine="compiled", workers=1, shards=3)
        assert out.partition.layers == ref.partition.layers
        for cs, cp in zip(ref.round_comm, out.round_comm):
            assert _counts(cs) == _counts(cp)
        assert out.round_recovery["retries"] > 0

    def test_worker_death_is_recovered_and_cleans_up(self, fresh_pool_env):
        g = _graph()
        before = _shm_segments()
        with faults.inject(FaultPlan(kinds=("exit",), **_FIRST_ATTEMPT)):
            out = _partition(g, engine="compiled", workers=2, shards=3)
        ref = _partition(g, engine="compiled", workers=1, shards=3)
        assert out.partition.layers == ref.partition.layers
        assert out.round_recovery["respawns"] > 0
        assert _shm_segments() <= before

    def test_unrecoverable_fault_surfaces_and_cleans_up(
        self, fresh_pool_env
    ):
        before = _shm_segments()
        with faults.inject(FaultPlan(kinds=("crash",), seed=2, rate=1.0)):
            with pytest.raises(
                WorkerPoolError, match="injected worker fault"
            ):
                _partition(
                    _graph(), engine="compiled", workers=2, shards=3,
                    config=_NO_RECOVERY,
                )
        assert _shm_segments() <= before
        assert multiprocessing.active_children() == []

    def test_faulted_pool_is_replaced_on_next_run(self, fresh_pool_env):
        with faults.inject(FaultPlan(kinds=("crash",), seed=2, rate=1.0)):
            with pytest.raises(WorkerPoolError):
                _partition(
                    _graph(), engine="compiled", workers=2, shards=3,
                    config=_NO_RECOVERY,
                )
        with faults.inject(None):
            out = _partition(_graph(), engine="compiled", workers=2, shards=3)
            ref = _partition(_graph(), engine="compiled", workers=1, shards=3)
        assert out.partition.layers == ref.partition.layers
