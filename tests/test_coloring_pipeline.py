"""Tests for the end-to-end Theorem 1.3 pipelines."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.pipeline import (
    color_graph,
    coloring_alpha_squared,
    coloring_alpha_squared_eps,
    coloring_large_alpha,
    coloring_two_plus_eps,
)
from repro.graphs.generators import (
    grid_2d,
    preferential_attachment,
    random_tree,
    union_of_random_forests,
)
from repro.graphs.graph import Graph
from repro.graphs.validation import is_proper_coloring


class TestAlphaSquaredEps:
    def test_proper_and_bounded(self):
        alpha = 3
        g = union_of_random_forests(100, alpha, seed=1)
        res = coloring_alpha_squared_eps(g, alpha, eps=1.0)
        assert is_proper_coloring(g, res.colors)
        # O(alpha^{2+eps}) with the beta = max(a^{1+e}, 2a+1) floor.
        assert res.palette_bound <= 16 * (res.beta + 1) ** 2

    def test_trivial_edgeless(self):
        res = coloring_alpha_squared_eps(Graph.from_edges(4, []), 1)
        assert res.num_colors == 1
        assert res.total_rounds == 0


class TestAlphaSquared:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(1, 3))
    @settings(max_examples=8, deadline=None)
    def test_proper_with_quadratic_palette(self, seed, alpha):
        g = union_of_random_forests(80, alpha, seed=seed)
        res = coloring_alpha_squared(g, alpha, eps=1.0)
        assert is_proper_coloring(g, res.colors)
        assert res.palette_bound <= 16 * (res.beta + 1) ** 2
        assert res.beta == max(math.ceil(3 * alpha), 2)

    def test_round_breakdown_sums(self):
        g = union_of_random_forests(60, 2, seed=2)
        res = coloring_alpha_squared(g, 2)
        assert res.total_rounds == res.partition_rounds + res.coloring_rounds


class TestTwoPlusEps:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(1, 3))
    @settings(max_examples=6, deadline=None)
    def test_headline_color_bound(self, seed, alpha):
        """The paper's flagship: at most (2+eps)*alpha + 1 colors."""
        g = union_of_random_forests(70, alpha, seed=seed)
        res = coloring_two_plus_eps(g, alpha, eps=1.0)
        assert is_proper_coloring(g, res.colors)
        assert res.num_colors <= res.beta + 1
        assert res.beta == max(math.ceil(3 * alpha), 2)

    def test_mpc_initializer_variant(self):
        g = union_of_random_forests(60, 2, seed=3)
        res = coloring_two_plus_eps(g, 2, initial_method="mpc")
        assert is_proper_coloring(g, res.colors)
        assert res.num_colors <= res.beta + 1
        assert res.details["initial_method"] == "mpc"

    def test_unknown_method_rejected(self):
        g = random_tree(10, seed=4)
        with pytest.raises(ValueError):
            coloring_two_plus_eps(g, 1, initial_method="bogus")

    def test_tree_four_colors_with_eps_one(self):
        # alpha=1, eps=1: (2+1)*1 + 1 = 4 colors max.
        g = random_tree(120, seed=5)
        res = coloring_two_plus_eps(g, 1, eps=1.0)
        assert res.num_colors <= 4

    def test_grid(self):
        g = grid_2d(7, 7)
        res = coloring_two_plus_eps(g, 2, eps=1.0)
        assert is_proper_coloring(g, res.colors)
        assert res.num_colors <= 7


class TestLargeAlpha:
    def test_proper_with_fresh_palettes(self):
        alpha = 2
        g = union_of_random_forests(60, alpha, seed=6)
        res = coloring_large_alpha(g, alpha, eps=1.0)
        assert is_proper_coloring(g, res.colors)
        assert res.num_colors <= res.palette_bound

    def test_layers_use_disjoint_ranges(self):
        g = union_of_random_forests(60, 2, seed=7)
        res = coloring_large_alpha(g, 2, eps=1.0)
        # cross-layer edges can never be monochromatic by construction;
        # properness already checked, but palette must cover all colors.
        assert max(res.colors) < res.palette_bound


class TestColorGraphDispatcher:
    def test_auto_uses_degeneracy(self):
        g = preferential_attachment(80, 2, seed=8)
        res = color_graph(g)
        assert is_proper_coloring(g, res.colors)
        assert res.variant == "two_plus_eps"

    @pytest.mark.parametrize(
        "variant",
        ["two_plus_eps", "alpha_squared", "alpha_squared_eps", "large_alpha"],
    )
    def test_all_variants_dispatch(self, variant):
        g = union_of_random_forests(40, 2, seed=9)
        res = color_graph(g, variant=variant, alpha=2)
        assert is_proper_coloring(g, res.colors)
        assert res.variant == variant

    def test_unknown_variant_rejected(self):
        g = random_tree(10, seed=10)
        with pytest.raises(ValueError):
            color_graph(g, variant="nope")

    def test_explicit_alpha_overrides_estimate(self):
        g = random_tree(50, seed=11)
        res = color_graph(g, variant="two_plus_eps", alpha=1)
        assert res.alpha == 1
        assert res.num_colors <= 4
