"""Differential harness: the parallel and batched engines must be invisible.

``beta_partition_ampc`` exposes four execution knobs — ``store``
(columnar kernels vs the dict-backed oracle), ``engine`` (lockstep
batched game kernels vs the per-game scalar interpreter), ``workers``
(process-pool machine sharding), and, implicitly, the cross-round game
cache and the scaled-integer coin fast path.  None of them may change a
single observable: partitions, layer values, round counts, per-round
statistics (probe/write totals and maxima), and per-store word
accounting must be bit-identical to the serial dict oracle for every
(store, engine, workers) combination.  These tests enforce that on
randomized sparse graphs, on the Fraction deep-horizon fallback, and on
the bigint escalation path of the integer coins.

Small shapes run by default; the full-size shapes are marked ``slow``
and opt in via ``--slow`` (CI's cron/label-gated job).  ``--workers``
adds one more worker count to the built-in {1, 2, 4} matrix.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import native
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.graphs.generators import (
    complete_ary_tree,
    path_graph,
    preferential_attachment,
    random_gnm,
    union_of_random_forests,
)
from repro.lca.coin_game import CoinDroppingGame
from repro.lca.oracle import GraphOracle

WORKER_MATRIX = (1, 2, 4)


def _assert_outcomes_equivalent(oracle, candidate):
    """Candidate run vs the serial dict oracle: observationally identical."""
    assert candidate.partition.layers == oracle.partition.layers
    assert candidate.rounds == oracle.rounds
    assert candidate.mode == oracle.mode
    assert candidate.x == oracle.x
    assert candidate.unlayered_per_round == oracle.unlayered_per_round
    sa, sb = oracle.simulator.stats, candidate.simulator.stats
    assert sb.space_per_machine == sa.space_per_machine
    assert len(sb.rounds) == len(sa.rounds)
    for ra, rb in zip(sa.rounds, sb.rounds):
        for field in (
            "round_index",
            "machines_active",
            "max_reads",
            "max_writes",
            "total_reads",
            "total_writes",
            "store_words",
        ):
            assert getattr(rb, field) == getattr(ra, field), field
    for store_a, store_b in zip(oracle.simulator.stores, candidate.simulator.stores):
        assert store_b.total_words() == store_a.total_words()


def _run_matrix(graph, beta, **kwargs):
    """Run every (store, engine, workers) combination vs the dict oracle.

    ``min_pool_games=1`` forces pool dispatch even on these tiny shapes,
    so the worker legs genuinely exercise the sharded path.
    """
    oracle = beta_partition_ampc(graph, beta, store="dict", workers=1, **kwargs)
    legs = [
        ("dict", None),
        ("columnar", "batched"),
        ("columnar", "scalar"),
    ]
    if native.available():
        # The fused C kernel joins the matrix wherever it can load; its
        # dedicated skip-marked tests live in test_native_kernel.py.
        legs.append(("columnar", "compiled"))
    for store, engine in legs:
        for workers in WORKER_MATRIX:
            if store == "dict" and workers == 1:
                continue
            candidate = beta_partition_ampc(
                graph, beta, store=store, workers=workers, engine=engine,
                min_pool_games=1, **kwargs
            )
            assert candidate.workers == workers
            if engine is not None:
                assert candidate.engine == engine
            _assert_outcomes_equivalent(oracle, candidate)
    return oracle


class TestDifferentialMatrix:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(1, 3))
    @settings(max_examples=5, deadline=None)
    def test_forest_unions_lca(self, seed, alpha):
        g = union_of_random_forests(60, alpha, seed=seed)
        _run_matrix(g, 3 * alpha)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=4, deadline=None)
    def test_gnm_lca(self, seed):
        g = random_gnm(90, 180, seed=seed)
        _run_matrix(g, 9)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=3, deadline=None)
    def test_peel_mode(self, seed):
        g = union_of_random_forests(70, 2, seed=seed)
        _run_matrix(g, 6, mode="peel")

    def test_multi_round_deep_tree(self):
        # x = β+1 certifies one layer per round: several residuals, so the
        # matrix also covers re-encoding, eviction, and cache staleness.
        beta = 3
        g = complete_ary_tree(beta + 1, 4)
        oracle = _run_matrix(g, beta, x=beta + 1)
        assert oracle.rounds >= 2
        # The fourth knob: transport="message" joins the matrix on this
        # multi-round shape (full shard sweeps live in the fabric tests).
        message_legs = [("batched", 3), ("scalar", 2)]
        if native.available():
            message_legs.append(("compiled", 3))
        for engine, shards in message_legs:
            candidate = beta_partition_ampc(
                g, beta, x=beta + 1, store="columnar", engine=engine,
                transport="message", shards=shards,
            )
            assert candidate.transport == "message"
            _assert_outcomes_equivalent(oracle, candidate)

    def test_preferential_attachment_hubs(self):
        g = preferential_attachment(150, 2, seed=11)
        _run_matrix(g, 6)

    def test_workers_option_joins_matrix(self, workers_option):
        # The opt-in --workers value (e.g. CI's REPRO_WORKERS leg) gets a
        # seat in the matrix even when it is not one of {1, 2, 4}.
        g = random_gnm(60, 120, seed=3)
        oracle = beta_partition_ampc(g, 9, store="dict")
        candidate = beta_partition_ampc(
            g, 9, store="columnar", workers=workers_option
        )
        _assert_outcomes_equivalent(oracle, candidate)

    @pytest.mark.slow
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=2, deadline=None)
    def test_full_size_gnm_lca(self, seed):
        g = random_gnm(6000, 12000, seed=seed)
        _run_matrix(g, 9)

    @pytest.mark.slow
    def test_full_size_multi_round(self):
        g = preferential_attachment(4000, 3, seed=7)
        oracle = _run_matrix(g, 8)
        assert oracle.rounds >= 2


class TestCoinRepresentationPaths:
    def test_fraction_deep_horizon_fallback(self):
        # x = 2^15 at β = 1 pushes the forwarding horizon past
        # INT_COIN_HORIZON_CAP, so every fabric and worker count runs
        # Fraction coins; the matrix must still agree bit for bit.
        g = path_graph(10)
        _run_matrix(g, 1, x=2**15)

    def test_int_coins_escalate_and_match_fractions(self):
        # Dynamic-scale games must agree with the Fraction representation
        # on the same graph, and at least one forwarding division on a
        # hub-heavy graph must actually escalate the scale.
        g = preferential_attachment(120, 2, seed=5)
        escalated = False
        for v in range(0, g.num_vertices, 7):
            fast = CoinDroppingGame(GraphOracle(g), v, x=49, beta=6)
            result = fast.run()
            escalated = escalated or fast.peak_coin_scale > 1
            slow = CoinDroppingGame(GraphOracle(g), v, x=49, beta=6)
            slow._int_coins = False  # force the Fraction representation
            reference = slow.run()
            assert result.layer == reference.layer
            assert result.explored == reference.explored
            assert result.proof.layers == reference.proof.layers
            assert result.queries == reference.queries
        assert escalated, "no game ever needed a scale escalation"

    def test_bigint_escalation_matches_fractions(self):
        # A division chain through coprime forwarding-set sizes (3, 5, 7)
        # with x a power of two forces an escalation on every hop, pushing
        # the scale far past 63 bits: the "overflow" path is plain Python
        # bigint arithmetic and must stay value-identical to Fractions.
        game = CoinDroppingGame(
            GraphOracle(path_graph(3)), 0, x=2**75, beta=6,
            forward_iterations=40,
        )
        assert game._int_coins
        primes = (3, 5, 7)
        fsets: dict[int, list[int]] = {}
        fresh = 100
        for i in range(39):
            k = primes[i % len(primes)]
            members = [i + 1] + list(range(fresh, fresh + k - 1))
            fresh += k - 1
            fsets[i] = members
        ints = game._forward_scaled_ints(fsets)
        fractions = game._forward_fractions(fsets)
        assert game.peak_coin_scale > 2**63
        # Coins never leave the system: the total recovers the scale.
        total = sum(ints.values())
        assert total % game.x == 0
        scale = total // game.x
        assert set(ints) == set(fractions)
        for u, amount in ints.items():
            assert Fraction(amount, scale) == fractions[u]


class TestSeedDeterminism:
    def test_byte_identical_across_workers_and_runs(self):
        # Map-ordering or scheduling nondeterminism anywhere in the pool
        # path would show up here: same seed => byte-identical layers for
        # workers=1 vs workers=4 and across two consecutive runs.
        g = random_gnm(400, 800, seed=20260730)
        n = g.num_vertices
        serial = beta_partition_ampc(g, 9, store="columnar", workers=1)
        pooled = beta_partition_ampc(g, 9, store="columnar", workers=4)
        repeat = beta_partition_ampc(g, 9, store="columnar", workers=4)
        blob = serial.partition.layer_array(n).tobytes()
        assert pooled.partition.layer_array(n).tobytes() == blob
        assert repeat.partition.layer_array(n).tobytes() == blob

    def test_peel_mode_byte_identical(self):
        g = union_of_random_forests(200, 2, seed=9)
        n = g.num_vertices
        runs = [
            beta_partition_ampc(g, 6, mode="peel", store="columnar", workers=w)
            for w in (1, 4, 4)
        ]
        blobs = {r.partition.layer_array(n).tobytes() for r in runs}
        assert len(blobs) == 1


class TestGameCache:
    def test_cache_hits_on_untouched_regions(self):
        # β = 1, x = 2 strips two layers off each end of a path per round;
        # interior vertices far from both frontiers replay their cached
        # fixed point until the frontier reaches them.
        g = path_graph(40)
        columnar = beta_partition_ampc(g, 1, x=2, store="columnar")
        oracle = beta_partition_ampc(g, 1, x=2, store="dict")
        assert columnar.rounds >= 3
        assert columnar.game_cache_hits > 0
        _assert_outcomes_equivalent(oracle, columnar)

    def test_cache_hits_with_pool_match_too(self):
        g = path_graph(40)
        oracle = beta_partition_ampc(g, 1, x=2, store="dict")
        pooled = beta_partition_ampc(g, 1, x=2, store="columnar", workers=2)
        assert pooled.game_cache_hits > 0
        _assert_outcomes_equivalent(oracle, pooled)

    def test_cache_hits_with_message_fabric_match_too(self):
        g = path_graph(40)
        oracle = beta_partition_ampc(g, 1, x=2, store="dict")
        sharded = beta_partition_ampc(
            g, 1, x=2, store="columnar", transport="message", shards=3
        )
        assert sharded.game_cache_hits > 0
        _assert_outcomes_equivalent(oracle, sharded)

    def test_dict_oracle_reports_no_cache(self):
        g = path_graph(12)
        assert beta_partition_ampc(g, 1, x=2, store="dict").game_cache_hits == 0
