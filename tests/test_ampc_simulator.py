"""Tests for the AMPC round executor."""

from __future__ import annotations

import pytest

from repro.ampc.dds import EMPTY
from repro.ampc.machine import SpaceExceeded
from repro.ampc.simulator import AMPCSimulator


class TestRounds:
    def test_round_reads_previous_writes_next(self):
        sim = AMPCSimulator(input_size=100, delta=0.5)
        sim.load_input([("x", 7)])

        def task(ctx):
            ctx.write("y", ctx.read("x") + 1)

        store = sim.round([("M0", task)])
        assert store.read("y") == 8
        assert sim.stats.num_rounds == 1

    def test_adaptive_chained_reads(self):
        # The defining AMPC power: g^k(y) via k dependent reads in a round.
        sim = AMPCSimulator(input_size=1000, delta=0.5)
        sim.load_input([(("g", i), i + 1) for i in range(10)])

        def task(ctx):
            value = 0
            for _ in range(5):
                value = ctx.read(("g", value))
            ctx.write("result", value)

        store = sim.round([("M0", task)])
        assert store.read("result") == 5

    def test_rounds_chain_stores(self):
        sim = AMPCSimulator(input_size=100)
        sim.load_input([("v", 1)])

        def double(ctx):
            ctx.write("v", ctx.read("v") * 2)

        for _ in range(3):
            sim.round([("M0", double)])
        assert sim.current_store.read("v") == 8
        assert sim.stats.num_rounds == 3

    def test_reducer_collapses_multivalues(self):
        sim = AMPCSimulator(input_size=100)

        def writer(value):
            def task(ctx):
                ctx.write("k", value)

            return task

        store = sim.round([("A", writer(5)), ("B", writer(2))], reducer=min)
        assert store.read("k") == 2

    def test_stats_track_max_and_total(self):
        sim = AMPCSimulator(input_size=100)
        sim.load_input([("x", 0)])

        def heavy(ctx):
            for _ in range(4):
                ctx.read("x")

        def light(ctx):
            ctx.read("x")

        sim.round([("H", heavy), ("L", light)])
        rs = sim.stats.rounds[0]
        assert rs.max_reads == 4
        assert rs.total_reads == 5
        assert rs.machines_active == 2

    def test_strict_space_enforcement(self):
        sim = AMPCSimulator(input_size=16, delta=0.5, strict_space=True)
        sim.load_input([("x", 0)])

        def hog(ctx):
            for _ in range(100):
                ctx.read("x")

        with pytest.raises(SpaceExceeded):
            sim.round([("M", hog)])

    def test_port_to_current(self):
        sim = AMPCSimulator(input_size=100)
        sim.round([])
        sim.port_to_current([("ported", 1)])
        assert sim.current_store.read("ported") == 1

    def test_charge_rounds(self):
        sim = AMPCSimulator(input_size=100)
        sim.charge_rounds(3)
        assert sim.stats.num_rounds == 3
        with pytest.raises(ValueError):
            sim.charge_rounds(-1)

    def test_effective_delta(self):
        sim = AMPCSimulator(input_size=1000)
        sim.load_input([("x", 0)])

        def task(ctx):
            for _ in range(31):  # ~1000^0.5 reads
                ctx.read("x")

        sim.round([("M", task)])
        assert 0.45 <= sim.stats.effective_delta() <= 0.55

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AMPCSimulator(0)
        with pytest.raises(ValueError):
            AMPCSimulator(10, delta=1.5)

    def test_missing_key_propagates_empty(self):
        sim = AMPCSimulator(input_size=100)
        seen = []

        def task(ctx):
            seen.append(ctx.read("ghost"))

        sim.round([("M", task)])
        assert seen == [EMPTY]
