"""Tests for S-induced β-partitions: Definition 3.6 and Lemmas 3.7/3.8/3.13/3.14."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    complete_ary_tree,
    complete_graph,
    path_graph,
    star_graph,
    union_of_random_forests,
)
from repro.partition.beta_partition import INFINITY
from repro.partition.dependency import dependency_set
from repro.partition.induced import (
    induced_beta_partition,
    induced_partition_from_view,
    natural_beta_partition,
)
from repro.util.rng import SplitMix64


class TestDefinition36:
    def test_path_all_layer_zero(self):
        g = path_graph(5)
        p = natural_beta_partition(g, 2)
        assert all(p.layer(v) == 0 for v in g.vertices())

    def test_star_with_beta_one(self):
        g = star_graph(6)
        p = natural_beta_partition(g, 1)
        # Leaves peel at step 0; hub has 5 infinity-neighbors at step 0,
        # then 0 at step 1.
        assert all(p.layer(v) == 0 for v in range(1, 6))
        assert p.layer(0) == 1

    def test_clique_stalls_below_threshold(self):
        g = complete_graph(6)
        p = natural_beta_partition(g, 3)
        # Every vertex has 5 > 3 infinity-neighbors forever: all infinity.
        assert all(p.layer(v) == INFINITY for v in g.vertices())

    def test_clique_peels_at_threshold(self):
        g = complete_graph(6)
        p = natural_beta_partition(g, 5)
        assert all(p.layer(v) == 0 for v in g.vertices())

    def test_ary_tree_depth_layers(self):
        beta = 3
        g = complete_ary_tree(beta + 1, 3)
        p = natural_beta_partition(g, beta)
        # Depth-3 (β+1)-ary tree: layer = height of the vertex.
        assert p.layer(0) == 3
        assert p.size() == 4

    def test_outside_subset_is_infinity(self):
        g = path_graph(4)
        p = induced_beta_partition(g, [0, 1], 2)
        assert p.layer(2) == INFINITY
        assert p.layer(3) == INFINITY

    def test_subset_neighbors_outside_count_forever(self):
        # Vertex 1 in a K4 with S={0,1}: 2 outside neighbors always count
        # as infinity, so with beta=1 it can never be layered... with
        # beta=2 it can once 0 is layered? 0 also has 2 outside + 1.
        g = complete_graph(4)
        p = induced_beta_partition(g, [0, 1], 2)
        # Both have 2 outside-infinity + 1 inside-infinity = 3 > 2 at step
        # 0... wait: inside neighbor is each other. deg = 3, outside = 2.
        # At step 0: 3 infinity-neighbors > 2 -> blocked forever.
        assert p.layer(0) == INFINITY
        assert p.layer(1) == INFINITY
        p2 = induced_beta_partition(g, [0, 1], 3)
        assert p2.layer(0) == 0

    def test_beta_below_one_rejected(self):
        with pytest.raises(ValueError):
            induced_partition_from_view({}, {}, 0)

    def test_view_not_closed_rejected(self):
        with pytest.raises(ValueError):
            induced_partition_from_view({0: [1]}, {0: 1}, 2)

    def test_degree_smaller_than_view_rejected(self):
        with pytest.raises(ValueError):
            induced_partition_from_view({0: [1], 1: [0]}, {0: 0, 1: 1}, 2)


class TestLemma37:
    """Properties i-iii of Lemma 3.7 on random instances."""

    @given(st.integers(min_value=0, max_value=2**31), st.integers(3, 9))
    @settings(max_examples=25, deadline=None)
    def test_properties(self, seed, beta):
        g = union_of_random_forests(50, 3, seed=seed)
        rng = SplitMix64(seed ^ 0xABC)
        subset = {v for v in g.vertices() if rng.random() < 0.7}
        sigma = induced_beta_partition(g, subset, beta)
        for v in subset:
            lay = sigma.layer(v)
            nbr_layers = [sigma.layer(int(w)) for w in g.neighbors(v)]
            if lay == INFINITY:
                # (i) at least beta+1 infinity neighbors
                assert sum(1 for L in nbr_layers if L == INFINITY) >= beta + 1
            else:
                # (ii) at most beta neighbors with layer >= lay
                assert sum(1 for L in nbr_layers if L >= lay) <= beta
                # (iii) if deg >= beta+1, at least beta+1 neighbors with
                # layer >= lay - 1
                if g.degree(v) >= beta + 1:
                    assert (
                        sum(1 for L in nbr_layers if L >= lay - 1) >= beta + 1
                    )


class TestLemma38Monotonicity:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_larger_subset_smaller_layers(self, seed):
        g = union_of_random_forests(60, 2, seed=seed)
        beta = 5
        rng = SplitMix64(seed)
        small = {v for v in g.vertices() if rng.random() < 0.4}
        grow = {v for v in g.vertices() if rng.random() < 0.5}
        large = small | grow
        sigma_small = induced_beta_partition(g, small, beta)
        sigma_large = induced_beta_partition(g, large, beta)
        for v in g.vertices():
            assert sigma_small.layer(v) >= sigma_large.layer(v)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_lemma_3_13_natural_is_minimum(self, seed):
        g = union_of_random_forests(60, 2, seed=seed)
        beta = 5
        rng = SplitMix64(seed ^ 0x123)
        subset = {v for v in g.vertices() if rng.random() < 0.6}
        sigma = induced_beta_partition(g, subset, beta)
        natural = natural_beta_partition(g, beta)
        for v in g.vertices():
            assert sigma.layer(v) >= natural.layer(v)


class TestLemma314:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_dependency_superset_gives_exact_layers(self, seed):
        g = union_of_random_forests(50, 2, seed=seed)
        beta = 5
        natural = natural_beta_partition(g, beta)
        rng = SplitMix64(seed)
        v = rng.randrange(g.num_vertices)
        dep = dependency_set(g, natural, v)
        if not dep:
            return
        # S = D(l, v) plus random extras.
        extras = {u for u in g.vertices() if rng.random() < 0.3}
        sigma = induced_beta_partition(g, dep | extras, beta)
        for w in dep:
            assert sigma.layer(w) == natural.layer(w)
