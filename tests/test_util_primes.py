"""Tests for primality utilities."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.util.primes import is_prime, next_prime

_SMALL_PRIMES = {
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
}


class TestIsPrime:
    def test_small_range_exact(self):
        for n in range(100):
            assert is_prime(n) == (n in _SMALL_PRIMES), n

    def test_negative_and_edge(self):
        assert not is_prime(-7)
        assert not is_prime(0)
        assert not is_prime(1)

    def test_known_large_prime(self):
        assert is_prime(2**31 - 1)  # Mersenne prime M31

    def test_known_large_composite(self):
        assert not is_prime(2**32 + 1)  # 641 * 6700417 (Euler)

    def test_carmichael_numbers_rejected(self):
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(carmichael), carmichael

    def test_squares_of_primes_rejected(self):
        for p in (101, 103, 10007):
            assert not is_prime(p * p)

    @given(st.integers(min_value=2, max_value=10**6))
    def test_agrees_with_trial_division(self, n):
        reference = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_prime(n) == reference


class TestNextPrime:
    def test_returns_input_when_prime(self):
        assert next_prime(13) == 13

    def test_advances_to_next(self):
        assert next_prime(14) == 17
        assert next_prime(90) == 97

    def test_small_inputs(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 2
        assert next_prime(3) == 3

    @given(st.integers(min_value=2, max_value=10**5))
    def test_result_is_prime_and_minimal(self, n):
        p = next_prime(n)
        assert p >= n
        assert is_prime(p)
        assert all(not is_prime(q) for q in range(n, p))
