"""Direct differential tests of the fused C wave kernel.

``repro.core.native.play_games_compiled`` must be a bit-identical
drop-in for ``play_games_batched`` — fold accumulators, probe counts,
records (explored sets in exploration order + clipped proofs),
super-iteration counts, inside-edge counts, and the ejection set all
byte-for-byte, including under adversarial word budgets that force
mid-game ejections and the Fraction deep-horizon regime.  Skip-marked
wholesale when the kernel cannot load (tier-1 must pass without it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import batched_games, native
from repro.core.batched_games import (
    csr_transpose_positions,
    play_games_batched,
)
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.graphs.generators import (
    path_graph,
    preferential_attachment,
    random_gnm,
    star_graph,
    union_of_random_forests,
)

pytestmark = pytest.mark.skipif(
    not native.available(), reason="compiled wave kernel unavailable"
)

_INF = float("inf")


def _run_both(offsets, targets, roots, **game):
    n = len(offsets) - 1
    layer_b = np.full(n, _INF)
    count_b = np.zeros(n, dtype=np.int64)
    layer_c = np.full(n, _INF)
    count_c = np.zeros(n, dtype=np.int64)
    batched = play_games_batched(
        offsets, targets, roots, out_layer=layer_b, out_count=count_b,
        want_records=True,
        transpose_pos=csr_transpose_positions(offsets, targets), **game
    )
    compiled = native.play_games_compiled(
        offsets, targets, roots, out_layer=layer_c, out_count=count_c,
        want_records=True, **game
    )
    assert np.array_equal(layer_b, layer_c)
    assert np.array_equal(count_b, count_c)
    for field in (
        "reads", "writes", "super_iterations", "edges_seen", "ejected",
    ):
        assert np.array_equal(
            getattr(batched, field), getattr(compiled, field)
        ), field
    assert batched.records == compiled.records
    return batched, compiled


class TestBitIdentical:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_gnm(self, seed):
        g = random_gnm(120, 240, seed=seed)
        offsets, targets = g.csr()
        roots = np.arange(g.num_vertices, dtype=np.int64)
        _run_both(
            offsets, targets, roots,
            x=100, beta=9, clip=2, horizon=16, scale=None,
        )

    def test_hub_heavy_forwarding_sets(self):
        # Hubs with deg > beta+1 exercise the sigma-ranked top-(beta+1)
        # selection and the per-super-iteration fset cache.
        g = preferential_attachment(200, 3, seed=4)
        offsets, targets = g.csr()
        roots = np.arange(g.num_vertices, dtype=np.int64)
        _run_both(
            offsets, targets, roots,
            x=49, beta=6, clip=2, horizon=16, scale=None,
        )

    def test_star_graph_huge_beta(self):
        # beta+1 > 36: the numpy engine folds escalation factors through
        # Python bigint lcm; the C kernel's incremental int64 lcm with
        # division guards must land on the same transcripts.
        g = star_graph(50)
        offsets, targets = g.csr()
        roots = np.arange(g.num_vertices, dtype=np.int64)
        _run_both(
            offsets, targets, roots,
            x=1681, beta=40, clip=1, horizon=12, scale=None,
        )

    def test_forests_with_explicit_scale(self):
        g = union_of_random_forests(80, 2, seed=9)
        offsets, targets = g.csr()
        roots = np.arange(g.num_vertices, dtype=np.int64)
        _run_both(
            offsets, targets, roots,
            x=4, beta=3, clip=1, horizon=12, scale=12,
        )

    def test_empty_roots(self):
        g = path_graph(4)
        offsets, targets = g.csr()
        info = native.play_games_compiled(
            offsets, targets, np.empty(0, dtype=np.int64),
            x=4, beta=2, clip=1, horizon=12, scale=12,
            out_layer=np.full(4, _INF),
            out_count=np.zeros(4, dtype=np.int64),
        )
        assert not info.reads.size and not info.ejected.size


class TestEjectionParity:
    def test_mixed_ejections_identical(self, monkeypatch):
        # A shrunken word budget ejects an x-dependent subset of the
        # fleet mid-game: the ejected *set*, the rollback (zeroed
        # outputs, None records), and every surviving game's transcript
        # must match the numpy engine exactly.
        monkeypatch.setattr(batched_games, "SCALE_LIMIT", 1 << 24)
        g = preferential_attachment(150, 2, seed=11)
        offsets, targets = g.csr()
        roots = np.arange(g.num_vertices, dtype=np.int64)
        batched, compiled = _run_both(
            offsets, targets, roots,
            x=64, beta=6, clip=3, horizon=20, scale=None,
        )
        assert 0 < batched.ejected.size < len(roots)
        for gi in batched.ejected.tolist():
            assert compiled.records[gi] is None
            assert compiled.reads[gi] == 0
            assert compiled.super_iterations[gi] == 0

    def test_all_ejected_when_no_scale_fits(self):
        # x so large that scale_cap < 1: the compiled wrapper delegates
        # to the batched all-ejected early path, so the whole fleet
        # takes the scalar escape hatch on both engines.
        g = path_graph(4)
        offsets, targets = g.csr()
        roots = np.arange(4, dtype=np.int64)
        batched, compiled = _run_both(
            offsets, targets, roots,
            x=2**61, beta=1, clip=1, horizon=12, scale=None,
        )
        assert batched.ejected.size == 4
        assert compiled.ejected.size == 4


class TestEndToEndEngines:
    def test_partition_compiled_vs_oracle(self):
        g = random_gnm(300, 600, seed=21)
        oracle = beta_partition_ampc(g, 9, store="dict")
        compiled = beta_partition_ampc(g, 9, store="columnar",
                                       engine="compiled")
        assert compiled.engine == "compiled"
        assert compiled.partition.layers == oracle.partition.layers
        assert compiled.rounds == oracle.rounds

    def test_fraction_deep_horizon_partition(self):
        # x = 2^15 at beta = 1 pushes past INT_COIN_HORIZON_CAP: every
        # game ejects to the Fraction scalar path under both engines.
        g = path_graph(10)
        oracle = beta_partition_ampc(g, 1, x=2**15, store="dict")
        compiled = beta_partition_ampc(
            g, 1, x=2**15, store="columnar", engine="compiled"
        )
        assert compiled.partition.layers == oracle.partition.layers

    def test_lca_query_all_compiled(self):
        from repro.lca.partial_partition_lca import PartialPartitionLCA

        g = preferential_attachment(120, 2, seed=5)
        ref = PartialPartitionLCA(g, x=49, beta=6, engine="batched")
        lca = PartialPartitionLCA(g, x=49, beta=6, engine="compiled")
        merged_ref, results_ref = ref.query_all()
        merged, results = lca.query_all()
        assert merged.layers == merged_ref.layers
        for v, res in results_ref.items():
            got = results[v]
            assert got.layer == res.layer
            assert got.explored == res.explored
            assert got.proof.layers == res.proof.layers
            assert got.queries == res.queries
            assert got.super_iterations == res.super_iterations
            assert got.edges_seen == res.edges_seen
