"""Smoke + shape tests for the experiment harness (small parameters)."""

from __future__ import annotations

from repro.experiments.common import format_table, format_value
from repro.experiments.e1_lca_quality import run_lca_quality
from repro.experiments.e2_game_bounds import run_game_bounds
from repro.experiments.e3_theorem12 import run_theorem12, run_theorem12_deep
from repro.experiments.e4_coloring_eps import run_coloring_eps
from repro.experiments.e5_coloring_quadratic import run_coloring_quadratic
from repro.experiments.e6_coloring_optimal import run_coloring_optimal
from repro.experiments.e7_theorem15 import run_theorem15
from repro.experiments.e8_guessing import run_guessing
from repro.experiments.e9_constant_round import run_constant_round
from repro.experiments.e10_vs_delta import run_vs_delta
from repro.experiments.e11_substrate import run_substrate
from repro.experiments.f1_layer_histogram import run_layer_histogram
from repro.experiments.f2_exploration_ablation import run_exploration_ablation


class TestFormatting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(3) == "3"
        assert format_value(float("nan")) == "-"
        assert format_value(0.5) == "0.5"

    def test_format_table_roundtrip(self):
        rows = [{"a": 1, "b": True}, {"a": 22, "b": False}]
        table = format_table(rows, title="T")
        assert "T" in table
        assert "22" in table and "yes" in table

    def test_empty_table(self):
        assert "(no rows)" in format_table([], title="x")


class TestE1:
    def test_bounds_hold(self):
        rows = run_lca_quality(ns=(80,), alphas=(1, 2), xs=(16,))
        assert rows
        for row in rows:
            assert row["meets_bound"]
            assert row["subset_valid"]
            assert row["max_queries"] <= row["query_cap_x6"]
            assert row["max_layer"] <= row["layer_cap"]


class TestE2:
    def test_bounds_hold(self):
        rows = run_game_bounds(n=80, xs=(8, 16), num_roots=10)
        for row in rows:
            assert row["within_bounds"]
            assert row["connected"]


class TestE3:
    def test_partitions_valid(self):
        rows = run_theorem12(ns=(80,), alphas=(2,))
        for row in rows:
            assert row["valid"]
            assert row["acyclic"]
            assert row["max_outdeg"] <= row["beta"]

    def test_deep_rounds_decrease_with_x(self):
        rows = run_theorem12_deep(depths=(4,))
        by_x = {row["x"]: row["rounds"] for row in rows}
        assert by_x["x=b+1"] >= by_x["x=(b+1)^3"]


class TestColoringExperiments:
    def test_e4_shapes(self):
        rows = run_coloring_eps(n=60, alphas=(2,), eps_values=(1.0,))
        for row in rows:
            assert row["colors"] <= row["palette"]

    def test_e5_shapes(self):
        rows = run_coloring_quadratic(n=60, alphas=(1, 2))
        for row in rows:
            assert row["colors"] <= row["palette"]

    def test_e6_color_cap(self):
        rows = run_coloring_optimal(n=50, alphas=(1, 2), methods=("kw",))
        for row in rows:
            assert row["colors"] <= row["cap=(2+e)a+1"]

    def test_e7_decay(self):
        rows = run_theorem15(ns=(50,), xs=(2,))
        for row in rows:
            assert row["decay>=x"]
            assert row["palette"] <= row["cap_4xDelta"]

    def test_e9_flat_rounds(self):
        rows = run_constant_round(ns=(50, 100), alpha=2)
        # Partition rounds must not grow with n at fixed alpha.
        assert rows[0]["partition_rounds"] >= rows[-1]["partition_rounds"] - 1


class TestE8E10E11:
    def test_e8_overhead_bounded(self):
        rows = run_guessing(ns=(60,), alphas=(2,))
        for row in rows:
            assert row["rounds_guessed"] >= row["rounds_known"]
            assert row["overhead"] <= 20  # constant-factor claim

    def test_e10_alpha_family_wins(self):
        rows = run_vs_delta(ns=(150,), links=2)
        for row in rows:
            assert row["ours(2+e)a+1"] < row["MPC(2xD)"]

    def test_e11_sandwich(self):
        rows = run_substrate()
        for row in rows:
            assert row["sandwich_ok"]
            assert row["lemma_3_4"]


class TestFigures:
    def test_f1_histogram_covers_all_vertices(self):
        rows = run_layer_histogram(n=100, alpha=2, x=16)
        assert sum(r["vertices"] for r in rows) == 100

    def test_f2_adaptive_dominates(self):
        rows = run_exploration_ablation(beta=3, chain_length=3, fan=15, decoy_fan=15)
        by_name = {r["strategy"]: r for r in rows}
        adaptive = by_name["adaptive_game"]
        assert adaptive["certifies_layer"]
        assert adaptive["D_coverage"] > by_name["naive_coins"]["D_coverage"]
