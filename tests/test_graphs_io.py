"""Tests for graph serialization."""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    complete_ary_tree,
    cycle_graph,
    grid_2d,
    hypercube,
    path_graph,
    preferential_attachment,
    random_forest,
    random_gnm,
    random_tree,
    star_graph,
    union_of_random_forests,
)
from repro.graphs.graph import Graph
from repro.graphs.io import (
    graph_from_json,
    graph_to_json,
    read_edge_list,
    write_edge_list,
)

GENERATOR_CORPUS = [
    lambda: path_graph(17),
    lambda: cycle_graph(9),
    lambda: star_graph(12),
    lambda: grid_2d(4, 5),
    lambda: hypercube(4),
    lambda: complete_ary_tree(3, 3),
    lambda: random_tree(40, seed=11),
    lambda: random_forest(40, 25, seed=12),
    lambda: union_of_random_forests(50, 3, seed=13),
    lambda: random_gnm(40, 90, seed=14),
    lambda: preferential_attachment(60, 2, seed=15),
    lambda: Graph.from_edges(5, []),  # edgeless
    lambda: Graph.from_edges(0, []),  # empty
]


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = union_of_random_forests(40, 2, seed=1)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded == g

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n1 2  # inline comment\n")
        g = read_edge_list(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_explicit_vertex_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, num_vertices=5)
        assert g.num_vertices == 5

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_negative_id_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("-1 2\n")
        with pytest.raises(ValueError):
            read_edge_list(path)


class TestStrictMode:
    def test_self_loop_strict_names_file_and_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n2 2\n")
        with pytest.raises(ValueError, match=r"g\.txt:2: self-loop at vertex 2"):
            read_edge_list(path)

    def test_duplicate_strict_names_file_and_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n1 0\n")
        with pytest.raises(ValueError, match=r"g\.txt:3: duplicate edge \(1, 0\)"):
            read_edge_list(path)

    def test_lenient_skips_and_counts(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n2 2\n1 0\n1 2\n2 1\n3 3\n")
        stats: dict = {}
        with pytest.warns(UserWarning, match="dropped 2 self-loop"):
            g = read_edge_list(path, strict=False, stats=stats)
        assert g.num_edges == 2
        assert stats == {
            "self_loops_dropped": 2,
            "duplicates_dropped": 2,
            "edges_kept": 2,
        }

    def test_lenient_clean_file_no_warning(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        stats: dict = {}
        g = read_edge_list(path, strict=False, stats=stats)
        assert g.num_edges == 2
        assert stats["self_loops_dropped"] == 0
        assert stats["duplicates_dropped"] == 0

    def test_id_out_of_range_names_file_and_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 7\n")
        with pytest.raises(
            ValueError, match=r"g\.txt:2: vertex id 7 out of range for num_vertices=5"
        ):
            read_edge_list(path, num_vertices=5)

    def test_id_out_of_range_checked_in_lenient_mode_too(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("9 0\n")
        with pytest.raises(ValueError, match=r"g\.txt:1: vertex id 9"):
            read_edge_list(path, num_vertices=3, strict=False)


class TestRoundTripCorpus:
    @pytest.mark.parametrize("make", GENERATOR_CORPUS)
    def test_edge_list_round_trip(self, make, tmp_path):
        g = make()
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path, num_vertices=g.num_vertices) == g

    @pytest.mark.parametrize("make", GENERATOR_CORPUS)
    def test_json_round_trip(self, make):
        g = make()
        assert graph_from_json(graph_to_json(g)) == g

    @given(
        st.integers(min_value=1, max_value=25).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                        lambda e: e[0] != e[1]
                    ),
                    max_size=50,
                ),
            )
        )
    )
    @settings(max_examples=40)
    def test_random_graph_round_trips_both_formats(self, data):
        n, edges = data
        g = Graph.from_edges(n, edges)
        assert graph_from_json(graph_to_json(g)) == g
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "g.txt"
            write_edge_list(g, path)
            assert read_edge_list(path, num_vertices=n) == g


class TestJson:
    def test_roundtrip(self):
        g = union_of_random_forests(30, 3, seed=2)
        assert graph_from_json(graph_to_json(g)) == g

    def test_empty_graph(self):
        g = Graph.from_edges(4, [])
        assert graph_from_json(graph_to_json(g)) == g

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            graph_from_json('{"format": "other"}')
