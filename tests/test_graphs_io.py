"""Tests for graph serialization."""

from __future__ import annotations

import pytest

from repro.graphs.generators import union_of_random_forests
from repro.graphs.graph import Graph
from repro.graphs.io import (
    graph_from_json,
    graph_to_json,
    read_edge_list,
    write_edge_list,
)


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = union_of_random_forests(40, 2, seed=1)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded == g

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n1 2  # inline comment\n")
        g = read_edge_list(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_explicit_vertex_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, num_vertices=5)
        assert g.num_vertices == 5

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_negative_id_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("-1 2\n")
        with pytest.raises(ValueError):
            read_edge_list(path)


class TestJson:
    def test_roundtrip(self):
        g = union_of_random_forests(30, 3, seed=2)
        assert graph_from_json(graph_to_json(g)) == g

    def test_empty_graph(self):
        g = Graph.from_edges(4, [])
        assert graph_from_json(graph_to_json(g)) == g

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            graph_from_json('{"format": "other"}')
