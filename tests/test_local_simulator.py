"""Tests for the synchronous LOCAL simulator."""

from __future__ import annotations

import pytest

from repro.graphs.generators import cycle_graph, path_graph
from repro.local.simulator import LocalSimulator


class TestLocalSimulator:
    def test_initial_state_length_checked(self):
        with pytest.raises(ValueError):
            LocalSimulator(path_graph(3), [0, 1])

    def test_step_is_synchronous(self):
        # Max-propagation on a path: after r rounds, value spreads r hops.
        g = path_graph(5)
        sim = LocalSimulator(g, [0, 0, 0, 0, 9])

        def spread(v, mine, nbrs):
            return max([mine] + nbrs)

        sim.step(spread)
        assert sim.states == [0, 0, 0, 9, 9]
        sim.step(spread)
        assert sim.states == [0, 0, 9, 9, 9]
        assert sim.rounds == 2

    def test_step_directed_sees_only_out_neighbors(self):
        g = path_graph(3)
        out = [[1], [2], []]  # 0 -> 1 -> 2
        sim = LocalSimulator(g, [0, 0, 7])

        def pull(v, mine, outs):
            return max([mine] + outs)

        sim.step_directed(out, pull)
        assert sim.states == [0, 7, 7]  # vertex 0 sees only vertex 1

    def test_run_until_fixpoint(self):
        g = cycle_graph(4)
        sim = LocalSimulator(g, [3, 0, 0, 0])

        def spread(v, mine, nbrs):
            return max([mine] + nbrs)

        rounds = sim.run_until_fixpoint(spread, max_rounds=10)
        assert sim.states == [3, 3, 3, 3]
        assert rounds <= 4

    def test_fixpoint_respects_cap(self):
        g = path_graph(2)
        sim = LocalSimulator(g, [0, 1])

        def alternate(v, mine, nbrs):
            return 1 - mine

        sim.run_until_fixpoint(alternate, max_rounds=5)
        assert sim.rounds == 5
