"""Tests for partition-derived acyclic orientations."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orientation import Orientation, orient_by_partition
from repro.graphs.generators import (
    complete_graph,
    path_graph,
    union_of_random_forests,
)
from repro.partition.beta_partition import PartialBetaPartition
from repro.partition.induced import natural_beta_partition


class TestOrientByPartition:
    def test_edges_point_to_higher_layers(self):
        g = path_graph(3)
        p = PartialBetaPartition({0: 0, 1: 1, 2: 0})
        ori = orient_by_partition(g, p)
        assert ori.out_neighbors[0] == [1]
        assert ori.out_neighbors[2] == [1]
        assert ori.out_neighbors[1] == []

    def test_same_layer_ties_by_id(self):
        g = path_graph(3)
        p = PartialBetaPartition({0: 0, 1: 0, 2: 0})
        ori = orient_by_partition(g, p)
        assert ori.out_neighbors[0] == [1]
        assert ori.out_neighbors[1] == [2]

    def test_unlayered_vertex_rejected(self):
        g = path_graph(2)
        with pytest.raises(ValueError):
            orient_by_partition(g, PartialBetaPartition({0: 0}))

    @given(st.integers(min_value=0, max_value=2**31), st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_outdegree_bounded_by_beta_and_acyclic(self, seed, alpha):
        g = union_of_random_forests(60, alpha, seed=seed)
        beta = math.ceil(3 * alpha)
        p = natural_beta_partition(g, beta)
        ori = orient_by_partition(g, p)
        assert ori.max_out_degree() <= beta
        assert ori.is_acyclic()

    def test_orientation_covers_every_edge_once(self):
        g = union_of_random_forests(40, 2, seed=7)
        p = natural_beta_partition(g, 6)
        ori = orient_by_partition(g, p)
        directed = sum(len(o) for o in ori.out_neighbors)
        assert directed == g.num_edges


class TestOrientationStructure:
    def test_topological_order_edges_forward(self):
        g = complete_graph(4)
        p = PartialBetaPartition({v: 0 for v in range(4)})
        ori = orient_by_partition(g, p)
        order = ori.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for v, outs in enumerate(ori.out_neighbors):
            for w in outs:
                assert pos[v] < pos[w]

    def test_cycle_detection(self):
        g = complete_graph(3)
        bad = Orientation(graph=g, out_neighbors=[[1], [2], [0]])
        assert not bad.is_acyclic()
        with pytest.raises(ValueError):
            bad.topological_order()

    def test_in_neighbors_are_reverse(self):
        g = path_graph(4)
        p = natural_beta_partition(g, 2)
        ori = orient_by_partition(g, p)
        incoming = ori.in_neighbors()
        for v, outs in enumerate(ori.out_neighbors):
            for w in outs:
                assert v in incoming[w]
