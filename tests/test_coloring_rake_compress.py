"""Tests for rake-and-compress forest decomposition and 3-coloring."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.rake_compress import rake_compress, three_color_forest
from repro.graphs.generators import (
    complete_ary_tree,
    cycle_graph,
    path_graph,
    random_forest,
    random_tree,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.validation import is_proper_coloring


class TestDecomposition:
    def test_path_single_phase(self):
        # Endpoints rake, interior compresses: everything leaves at once.
        res = rake_compress(path_graph(50))
        assert res.phases == 1
        assert res.orientation.max_out_degree() <= 2

    def test_star_two_phases(self):
        res = rake_compress(star_graph(10))
        assert res.phases == 2  # leaves, then hub
        assert res.removal_phase[0] == 2

    def test_binary_tree_log_phases(self):
        g = complete_ary_tree(2, 7)  # 255 vertices, depth 7
        res = rake_compress(g)
        assert res.phases <= 2 * (7 + 1)

    def test_orientation_covers_every_edge(self):
        g = random_tree(80, seed=1)
        res = rake_compress(g)
        assert sum(len(o) for o in res.orientation.out_neighbors) == g.num_edges

    def test_orientation_acyclic(self):
        g = random_tree(60, seed=2)
        res = rake_compress(g)
        assert res.orientation.is_acyclic()

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            rake_compress(cycle_graph(5))

    def test_empty_and_singletons(self):
        res = rake_compress(Graph.from_edges(3, []))
        assert res.phases == 1
        assert all(p == 1 for p in res.removal_phase)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_out_degree_two_on_random_forests(self, seed):
        g = random_forest(60, 45, seed=seed)
        res = rake_compress(g)
        assert res.orientation.max_out_degree() <= 2
        assert res.orientation.is_acyclic()

    def test_phases_logarithmic_on_random_trees(self):
        for seed in range(3):
            n = 500
            g = random_tree(n, seed=seed)
            res = rake_compress(g)
            assert res.phases <= 4 * math.log2(n)


class TestThreeColoring:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_three_colors_on_random_trees(self, seed):
        g = random_tree(70, seed=seed)
        colors, __ = three_color_forest(g)
        assert is_proper_coloring(g, colors)
        assert set(colors) <= {0, 1, 2}

    def test_three_colors_on_forest_with_isolated(self):
        g = random_forest(50, 30, seed=3)
        colors, __ = three_color_forest(g)
        assert is_proper_coloring(g, colors)
        assert max(colors) <= 2

    def test_beats_generic_pipeline_on_forests(self):
        # Generic ((2+eps)a+1) at alpha=1 guarantees 4; rake-compress: 3.
        from repro.coloring.pipeline import coloring_two_plus_eps

        g = random_tree(150, seed=4)
        generic = coloring_two_plus_eps(g, 1, eps=1.0)
        specialized, __ = three_color_forest(g)
        assert len(set(specialized)) <= 3 <= generic.beta + 1
