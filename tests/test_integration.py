"""End-to-end integration tests crossing all subsystems."""

from __future__ import annotations

import math

import pytest

from repro.coloring.pipeline import color_graph, coloring_two_plus_eps
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.core.guessing import beta_partition_unknown_alpha
from repro.core.orientation import orient_by_partition
from repro.graphs.arboricity import exact_arboricity, forest_partition
from repro.graphs.generators import (
    grid_2d,
    hypercube,
    preferential_attachment,
    skewed_dependency_gadget,
    union_of_random_forests,
)
from repro.graphs.validation import is_forest, is_proper_coloring
from repro.lca.partial_partition_lca import PartialPartitionLCA
from repro.partition.beta_partition import INFINITY


class TestFullStackOnWorkloads:
    """Exact arboricity -> Theorem 1.2 -> orientation -> Theorem 1.3(3),
    every intermediate certificate checked."""

    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: union_of_random_forests(90, 2, seed=41),
            lambda: grid_2d(9, 9),
            lambda: hypercube(5),
            lambda: preferential_attachment(90, 2, seed=42),
        ],
        ids=["forests", "grid", "hypercube", "pref-attach"],
    )
    def test_pipeline_with_exact_alpha(self, make_graph):
        g = make_graph()
        alpha = exact_arboricity(g)
        # Certificate: alpha forests cover the edges.
        forests = forest_partition(g, alpha)
        assert forests is not None
        for f in forests:
            assert is_forest(g.num_vertices, f)

        beta = math.ceil(3 * alpha)
        outcome = beta_partition_ampc(g, beta)
        assert outcome.partition.is_valid(g, beta)
        assert not outcome.partition.is_partial(g.vertices())

        orientation = orient_by_partition(g, outcome.partition)
        assert orientation.max_out_degree() <= beta
        assert orientation.is_acyclic()

        result = coloring_two_plus_eps(g, alpha, eps=1.0)
        assert is_proper_coloring(g, result.colors)
        assert result.num_colors <= beta + 1


class TestLCAIntoAMPCConsistency:
    def test_standalone_lca_merge_matches_first_ampc_round(self):
        """The AMPC algorithm's first round assigns exactly the vertices
        the standalone min-merged LCA certifies (same x, beta)."""
        g = union_of_random_forests(70, 2, seed=43)
        beta, x = 6, 49
        lca = PartialPartitionLCA(g, x=x, beta=beta)
        merged, __ = lca.query_all()
        outcome = beta_partition_ampc(g, beta, x=x)
        hist = outcome.unlayered_per_round
        expected_after_first = sum(
            1 for v in g.vertices() if merged.layer(v) == INFINITY
        )
        if len(hist) > 1:
            assert hist[1] == expected_after_first
        else:
            assert expected_after_first == 0


class TestGadgetEndToEnd:
    def test_gadget_partition_and_coloring(self):
        beta = 3
        g, chain = skewed_dependency_gadget(beta, 3, fan=8, decoy_fan=6)
        outcome = beta_partition_ampc(g, beta)
        assert outcome.partition.is_valid(g, beta)
        result = color_graph(g, variant="two_plus_eps", alpha=1)
        assert is_proper_coloring(g, result.colors)
        assert result.num_colors <= 4  # trees need at most (2+e)a+1 = 4


class TestUnknownAlphaEndToEnd:
    def test_guess_then_color(self):
        g = union_of_random_forests(80, 3, seed=44)
        guessed = beta_partition_unknown_alpha(g)
        beta = guessed.outcome.beta
        orientation = orient_by_partition(g, guessed.outcome.partition)
        assert orientation.max_out_degree() <= beta
        from repro.coloring.greedy import orientation_greedy_coloring

        colors = orientation_greedy_coloring(orientation)
        assert is_proper_coloring(g, colors)
        assert max(colors) <= beta


class TestDeterminismAcrossRuns:
    def test_everything_is_reproducible(self):
        g = union_of_random_forests(60, 2, seed=45)
        a = color_graph(g, variant="two_plus_eps", alpha=2)
        b = color_graph(g, variant="two_plus_eps", alpha=2)
        assert a.colors == b.colors
        assert a.total_rounds == b.total_rounds
