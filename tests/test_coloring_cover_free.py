"""Tests for polynomial cover-free families."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.cover_free import CoverFreeFamily, choose_family
from repro.util.primes import is_prime


class TestChooseFamily:
    def test_constraints_satisfied(self):
        fam = choose_family(m=1000, beta=5)
        assert is_prime(fam.q)
        assert fam.q > fam.d * 5
        assert fam.q ** (fam.d + 1) >= 1000

    def test_small_m(self):
        fam = choose_family(m=10, beta=2)
        assert fam.target_colors >= 9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            choose_family(1, 3)
        with pytest.raises(ValueError):
            choose_family(10, 0)

    @given(st.integers(4, 10**6), st.integers(1, 20))
    @settings(max_examples=60)
    def test_family_always_valid(self, m, beta):
        fam = choose_family(m, beta)
        assert is_prime(fam.q)
        assert fam.q > fam.d * beta
        assert fam.q ** (fam.d + 1) >= m

    def test_fixed_point_is_order_beta_squared(self):
        # Once m ~ beta^2, the family cannot shrink further.
        beta = 5
        m = 10**6
        while True:
            fam = choose_family(m, beta)
            if fam.target_colors >= m:
                break
            m = fam.target_colors
        assert m <= 4 * (beta + 1) ** 2  # O(beta^2) fixed point


class TestEncoding:
    def test_coefficients_roundtrip(self):
        fam = CoverFreeFamily(q=7, d=2, source_colors=300)
        for color in (0, 1, 48, 299):
            coefs = fam.coefficients(color)
            assert len(coefs) == 3
            assert sum(c * 7**i for i, c in enumerate(coefs)) == color

    def test_distinct_colors_distinct_polynomials(self):
        fam = CoverFreeFamily(q=5, d=1, source_colors=25)
        seen = {tuple(fam.coefficients(c)) for c in range(25)}
        assert len(seen) == 25

    def test_out_of_range_color_rejected(self):
        fam = CoverFreeFamily(q=5, d=1, source_colors=25)
        with pytest.raises(ValueError):
            fam.coefficients(25)

    def test_evaluate_is_horner(self):
        fam = CoverFreeFamily(q=7, d=2, source_colors=343)
        color = 123  # coefficients (4, 3, 2): p(a) = 4 + 3a + 2a^2
        for a in range(7):
            assert fam.evaluate(color, a) == (4 + 3 * a + 2 * a * a) % 7


class TestReduceColor:
    def test_avoids_out_neighbors(self):
        fam = choose_family(m=100, beta=3)
        new = fam.reduce_color(42, [1, 2, 3], beta=3)
        a, val = divmod(new, fam.q)
        assert fam.evaluate(42, a) == val
        for other in (1, 2, 3):
            assert fam.evaluate(other, a) != val

    def test_too_many_neighbors_rejected(self):
        fam = choose_family(m=100, beta=2)
        with pytest.raises(ValueError):
            fam.reduce_color(0, [1, 2, 3], beta=2)

    def test_new_color_in_target_palette(self):
        fam = choose_family(m=64, beta=4)
        for color in range(0, 64, 7):
            new = fam.reduce_color(color, [c for c in (1, 5, 9) if c != color], 4)
            assert 0 <= new < fam.target_colors

    @given(
        st.integers(0, 99),
        st.lists(st.integers(0, 99), max_size=4, unique=True),
    )
    @settings(max_examples=60)
    def test_proper_on_directed_edge(self, mine, neighbors):
        """If u is in v's out-neighborhood, their new colors differ."""
        neighbors = [c for c in neighbors if c != mine]
        fam = choose_family(m=100, beta=4)
        new_mine = fam.reduce_color(mine, neighbors, 4)
        for other in neighbors:
            their_nbrs = [mine]  # any choice: check directly
            new_other = fam.reduce_color(other, their_nbrs, 4)
            a_mine, val_mine = divmod(new_mine, fam.q)
            a_other, val_other = divmod(new_other, fam.q)
            if a_mine == a_other:
                # v avoided u's value at a_mine => values differ.
                assert val_mine != fam.evaluate(other, a_mine)
