"""Tests for MIS-from-coloring."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.greedy import greedy_coloring
from repro.coloring.mis import (
    is_independent_set,
    is_maximal_independent_set,
    mis_from_coloring,
)
from repro.coloring.pipeline import coloring_two_plus_eps
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_gnm,
    star_graph,
    union_of_random_forests,
)


class TestPredicates:
    def test_independent(self):
        g = path_graph(4)
        assert is_independent_set(g, {0, 2})
        assert not is_independent_set(g, {0, 1})

    def test_maximal(self):
        g = path_graph(5)
        assert is_maximal_independent_set(g, {0, 2, 4})
        assert not is_maximal_independent_set(g, {0, 4})  # vertex 2 addable
        assert not is_maximal_independent_set(g, {0})  # 2, 3 or 4 addable

    def test_maximal_rejects_dependent(self):
        g = path_graph(3)
        assert not is_maximal_independent_set(g, {0, 1})


class TestMISFromColoring:
    def test_clique_single_vertex(self):
        g = complete_graph(6)
        mis = mis_from_coloring(g, greedy_coloring(g))
        assert len(mis) == 1

    def test_star_takes_leaves(self):
        g = star_graph(8)
        mis = mis_from_coloring(g, greedy_coloring(g))
        assert is_maximal_independent_set(g, mis)

    def test_wrong_length_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            mis_from_coloring(g, [0, 1])

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs_maximal(self, seed):
        g = random_gnm(40, 80, seed=seed)
        mis = mis_from_coloring(g, greedy_coloring(g))
        assert is_maximal_independent_set(g, mis)

    def test_from_paper_pipeline_coloring(self):
        """The paper's corollary: O(alpha) colors -> O(alpha)-round MIS."""
        g = union_of_random_forests(80, 2, seed=1)
        result = coloring_two_plus_eps(g, 2, eps=1.0)
        mis = mis_from_coloring(g, result.colors)
        assert is_maximal_independent_set(g, mis)

    def test_deterministic(self):
        g = cycle_graph(11)
        colors = greedy_coloring(g)
        assert mis_from_coloring(g, colors) == mis_from_coloring(g, colors)
