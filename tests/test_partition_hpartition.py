"""Tests for the Barenboim-Elkin H-partition peeler."""

from __future__ import annotations

import math

from repro.graphs.generators import (
    complete_graph,
    path_graph,
    union_of_random_forests,
)
from repro.partition.hpartition import h_partition


class TestHPartition:
    def test_path_single_round(self):
        res = h_partition(path_graph(6), 2)
        assert res.completed
        assert res.rounds == 1
        assert res.partition.size() == 1

    def test_clique_below_threshold_incomplete(self):
        res = h_partition(complete_graph(5), 2)
        assert not res.completed
        assert res.rounds == 0

    def test_forest_union_completes(self):
        alpha, eps = 3, 1.0
        g = union_of_random_forests(150, alpha, seed=20)
        beta = math.ceil((2 + eps) * alpha)
        res = h_partition(g, beta)
        assert res.completed
        assert res.partition.is_valid(g, beta)

    def test_size_logarithmic_bound(self):
        # Lemma 3.4: each peel keeps < 2a/b of the vertices, so the number
        # of layers is at most log_{b/2a}(n) + 1.
        alpha, eps = 2, 1.0
        g = union_of_random_forests(400, alpha, seed=21)
        beta = math.ceil((2 + eps) * alpha)
        res = h_partition(g, beta)
        bound = math.log(g.num_vertices) / math.log(beta / (2 * alpha)) + 1
        assert res.partition.size() <= bound

    def test_rounds_equal_layers(self):
        g = union_of_random_forests(100, 2, seed=22)
        res = h_partition(g, 5)
        assert res.rounds == res.partition.size()
