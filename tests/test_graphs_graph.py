"""Tests for the CSR Graph class."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.graphs.reference import reference_csr_from_edges

edge_lists = st.integers(min_value=2, max_value=20).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
            .filter(lambda e: e[0] != e[1]),
            max_size=40,
        ),
    )
)


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_vertices == 4
        assert g.num_edges == 3

    def test_duplicate_edges_merged(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(0, 3)])

    def test_empty_graph(self):
        g = Graph.from_edges(0, [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_degree() == 0

    def test_isolated_vertices(self):
        g = Graph.from_edges(5, [(0, 1)])
        assert g.degree(4) == 0
        assert list(g.neighbors(4)) == []


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph.from_edges(5, [(2, 4), (2, 0), (2, 3)])
        assert list(g.neighbors(2)) == [0, 3, 4]

    def test_neighbor_indexing(self):
        g = Graph.from_edges(4, [(1, 0), (1, 3)])
        assert g.neighbor(1, 0) == 0
        assert g.neighbor(1, 1) == 3
        with pytest.raises(IndexError):
            g.neighbor(1, 2)

    def test_has_edge(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(1, 1)

    def test_edges_iterates_each_once(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        g = Graph.from_edges(3, edges)
        assert sorted(g.edges()) == sorted(edges)

    def test_degrees_vector(self):
        g = Graph.from_edges(3, [(0, 1), (0, 2)])
        assert list(g.degrees()) == [2, 1, 1]
        assert g.max_degree() == 2

    @given(edge_lists)
    @settings(max_examples=60)
    def test_handshake_and_symmetry(self, data):
        n, edges = data
        g = Graph.from_edges(n, edges)
        assert int(g.degrees().sum()) == 2 * g.num_edges
        for u in range(n):
            for w in g.neighbors(u):
                assert g.has_edge(int(w), u)


class TestSubgraph:
    def test_induced_subgraph(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub, mapping = g.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert mapping == {1: 0, 2: 1, 3: 2}

    def test_subgraph_drops_outside_edges(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        sub, __ = g.subgraph([0, 2])
        assert sub.num_edges == 0

    def test_duplicate_vertices_rejected(self):
        g = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.subgraph([0, 0])

    @given(edge_lists)
    @settings(max_examples=40)
    def test_full_subgraph_is_isomorphic_identity(self, data):
        n, edges = data
        g = Graph.from_edges(n, edges)
        sub, mapping = g.subgraph(list(range(n)))
        assert mapping == {v: v for v in range(n)}
        assert sub == g


class TestComponents:
    def test_connected_path(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.connected_components() == [[0, 1, 2, 3]]

    def test_two_components_plus_isolated(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        assert g.connected_components() == [[0, 1], [2, 3], [4]]

    def test_empty_and_edgeless(self):
        assert Graph.from_edges(0, []).connected_components() == []
        assert Graph.from_edges(3, []).connected_components() == [[0], [1], [2]]

    def test_long_path_many_jump_rounds(self):
        # A path stresses the pointer-jumping convergence (diameter n).
        from repro.graphs.reference import reference_connected_components

        g = Graph.from_edges(257, [(i, i + 1) for i in range(256)])
        assert g.connected_components() == reference_connected_components(g)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_matches_reference_bfs_randomized(self, seed):
        from repro.graphs.generators import random_gnm
        from repro.graphs.reference import reference_connected_components

        rng_n = 1 + seed % 80
        rng_m = min((seed // 80) % (2 * rng_n + 1), rng_n * (rng_n - 1) // 2)
        g = random_gnm(rng_n, rng_m, seed=seed)
        assert g.connected_components() == reference_connected_components(g)


class TestArrayApi:
    def test_from_arrays_matches_from_edges(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        a = Graph.from_edges(4, edges)
        b = Graph.from_arrays(4, np.array(edges, dtype=np.int64))
        assert a == b

    def test_from_arrays_canonicalizes_and_dedupes(self):
        arr = np.array([[1, 0], [0, 1], [2, 1]], dtype=np.int64)
        g = Graph.from_arrays(3, arr)
        assert g.num_edges == 2

    def test_from_arrays_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop at vertex 2"):
            Graph.from_arrays(3, np.array([[0, 1], [2, 2]]))

    def test_from_arrays_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_arrays(3, np.array([[0, 3]]))

    def test_from_arrays_bad_shape(self):
        with pytest.raises(ValueError):
            Graph.from_arrays(3, np.zeros((2, 3), dtype=np.int64))

    def test_edge_array_sorted_canonical(self):
        g = Graph.from_edges(4, [(3, 2), (1, 0), (0, 2)])
        assert g.edge_array().tolist() == [[0, 1], [0, 2], [2, 3]]

    def test_edge_array_matches_edges_iter(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        assert [tuple(e) for e in g.edge_array()] == list(g.edges())

    def test_neighbors_of_batch(self):
        g = Graph.from_edges(5, [(0, 1), (0, 2), (1, 2), (3, 4)])
        targets, boundaries = g.neighbors_of([0, 3, 2])
        assert boundaries.tolist() == [0, 2, 3, 5]
        assert targets[0:2].tolist() == [1, 2]  # N(0)
        assert targets[2:3].tolist() == [4]  # N(3)
        assert targets[3:5].tolist() == [0, 1]  # N(2)

    def test_neighbors_of_empty_batch(self):
        g = Graph.from_edges(3, [(0, 1)])
        targets, boundaries = g.neighbors_of(np.empty(0, dtype=np.int64))
        assert len(targets) == 0 and boundaries.tolist() == [0]


class TestImmutability:
    """The satellite bugfix: no accessor may hand out a writable view."""

    def _graph(self):
        return Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])

    def test_neighbors_view_is_read_only(self):
        g = self._graph()
        with pytest.raises(ValueError):
            g.neighbors(1)[0] = 99
        assert g.neighbor(1, 0) == 0  # unchanged

    def test_degrees_view_is_read_only(self):
        g = self._graph()
        with pytest.raises(ValueError):
            g.degrees()[0] = 99
        assert g.degree(0) == 1

    def test_edge_array_is_read_only(self):
        g = self._graph()
        with pytest.raises(ValueError):
            g.edge_array()[0, 0] = 99
        assert g.edge_array()[0, 0] == 0

    def test_backing_arrays_frozen(self):
        g = self._graph()
        assert not g._offsets.flags.writeable
        assert not g._targets.flags.writeable


class TestReferenceEquivalence:
    """The vectorized CSR builder must be byte-identical to the seed one."""

    @given(edge_lists)
    @settings(max_examples=120)
    def test_byte_identical_to_seed_builder(self, data):
        n, edges = data
        g = Graph.from_edges(n, edges)
        ref_offsets, ref_targets = reference_csr_from_edges(n, edges)
        assert g._offsets.dtype == ref_offsets.dtype
        assert g._targets.dtype == ref_targets.dtype
        assert g._offsets.tobytes() == ref_offsets.tobytes()
        assert g._targets.tobytes() == ref_targets.tobytes()

    @given(edge_lists)
    @settings(max_examples=40)
    def test_subgraph_matches_seed_semantics(self, data):
        n, edges = data
        g = Graph.from_edges(n, edges)
        keep = [v for v in range(n) if v % 2 == 0]
        sub, mapping = g.subgraph(keep)
        assert mapping == {old: new for new, old in enumerate(keep)}
        expected = {
            (min(mapping[u], mapping[v]), max(mapping[u], mapping[v]))
            for u, v in g.edges()
            if u in mapping and v in mapping
        }
        assert set(sub.edges()) == expected


class TestEquality:
    def test_equal_graphs(self):
        a = Graph.from_edges(3, [(0, 1), (1, 2)])
        b = Graph.from_edges(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self):
        a = Graph.from_edges(3, [(0, 1)])
        b = Graph.from_edges(3, [(0, 2)])
        assert a != b
