"""Graceful degradation of the compiled engine.

``engine="compiled"`` must never be load-bearing: when the kernel
cannot load, dispatch downgrades to the bit-identical ``"batched"``
engine with a one-time warning, ``REPRO_NATIVE_DISABLE=1`` forces the
same downgrade, and a corrupt shared object in the build cache only
flips ``native.available()`` to False — ``import repro`` keeps working.
"""

from __future__ import annotations

import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.core import native
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.graphs.generators import random_gnm
from repro.lca.partial_partition_lca import PartialPartitionLCA

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestWarnedFallback:
    def test_partition_falls_back_to_batched(self, monkeypatch):
        g = random_gnm(90, 180, seed=3)
        reference = beta_partition_ampc(g, 9, store="columnar",
                                        engine="batched")
        monkeypatch.setattr(native, "available", lambda: False)
        monkeypatch.setattr(native, "_warned_fallback", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            degraded = beta_partition_ampc(
                g, 9, store="columnar", engine="compiled"
            )
        # The outcome reports the engine that actually ran, and every
        # observable matches the batched run bit for bit.
        assert degraded.engine == "batched"
        assert degraded.partition.layers == reference.partition.layers
        assert degraded.rounds == reference.rounds
        assert degraded.unlayered_per_round == reference.unlayered_per_round

    def test_warning_fires_once(self, monkeypatch):
        g = random_gnm(40, 80, seed=1)
        monkeypatch.setattr(native, "available", lambda: False)
        monkeypatch.setattr(native, "_warned_fallback", False)
        with pytest.warns(RuntimeWarning):
            beta_partition_ampc(g, 9, store="columnar", engine="compiled")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            again = beta_partition_ampc(
                g, 9, store="columnar", engine="compiled"
            )
        assert again.engine == "batched"

    def test_lca_falls_back_too(self, monkeypatch):
        g = random_gnm(60, 120, seed=2)
        monkeypatch.setattr(native, "available", lambda: False)
        monkeypatch.setattr(native, "_warned_fallback", False)
        with pytest.warns(RuntimeWarning, match="PartialPartitionLCA"):
            lca = PartialPartitionLCA(g, x=49, beta=6, engine="compiled")
        assert lca.engine == "batched"
        reference = PartialPartitionLCA(g, x=49, beta=6, engine="batched")
        merged, _ = lca.query_all()
        merged_ref, _ = reference.query_all()
        assert merged.layers == merged_ref.layers

    def test_explicit_batched_never_warns(self):
        g = random_gnm(40, 80, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = beta_partition_ampc(g, 9, store="columnar",
                                      engine="batched")
        assert out.engine == "batched"


class TestLoaderRobustness:
    def test_corrupt_shared_object_does_not_break_import(self, tmp_path):
        # Pre-seed the build cache with garbage at the exact path the
        # lazy builder would use: dlopen fails, available() goes False,
        # and `import repro` (plus a batched run) still works.
        script = (
            "from repro.core.native import _build\n"
            "p = _build.so_path()\n"
            "p.parent.mkdir(parents=True, exist_ok=True)\n"
            "p.write_bytes(b'not a shared object')\n"
            "import repro\n"
            "from repro.core import native\n"
            "assert native.available() is False\n"
            "assert native.load_error() is not None\n"
            "from repro.core.beta_partition_ampc import beta_partition_ampc\n"
            "from repro.graphs.generators import path_graph\n"
            "out = beta_partition_ampc(path_graph(8), 1, x=2,"
            " store='columnar', engine='compiled')\n"
            "assert out.engine == 'batched'\n"
            "print('FALLBACK_OK')\n"
        )
        env = dict(
            os.environ, PYTHONPATH=SRC,
            REPRO_NATIVE_CACHE=str(tmp_path),
        )
        env.pop("REPRO_NATIVE_DISABLE", None)
        result = subprocess.run(
            [sys.executable, "-W", "ignore::RuntimeWarning", "-c", script],
            capture_output=True, text=True, env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "FALLBACK_OK" in result.stdout

    def test_disable_env_gates_availability(self):
        script = (
            "from repro.core import native\n"
            "assert native.available() is False\n"
            "assert 'REPRO_NATIVE_DISABLE' in repr(native.load_error())\n"
            "print('DISABLED_OK')\n"
        )
        env = dict(
            os.environ, PYTHONPATH=SRC, REPRO_NATIVE_DISABLE="1",
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "DISABLED_OK" in result.stdout

    def test_missing_cache_dir_rebuilds(self, tmp_path):
        # A fresh (empty) cache directory: the lazy gcc build kicks in
        # and the kernel loads.
        script = (
            "from repro.core import native\n"
            "assert native.available() is True\n"
            "import numpy as np\n"
            "from repro.graphs.generators import path_graph\n"
            "offsets, targets = path_graph(6).csr()\n"
            "info = native.play_games_compiled(offsets, targets,"
            " np.arange(6, dtype=np.int64), x=4, beta=2, clip=1,"
            " horizon=12, scale=12, out_layer=np.full(6, float('inf')),"
            " out_count=np.zeros(6, dtype=np.int64))\n"
            "assert info.reads.size == 6\n"
            "print('REBUILD_OK')\n"
        )
        env = dict(
            os.environ, PYTHONPATH=SRC,
            REPRO_NATIVE_CACHE=str(tmp_path / "fresh"),
        )
        env.pop("REPRO_NATIVE_DISABLE", None)
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "REBUILD_OK" in result.stdout
