"""Tests for coloring/orientation/forest validators."""

from __future__ import annotations

from repro.graphs.generators import complete_graph, cycle_graph, path_graph
from repro.graphs.validation import (
    count_colors,
    is_acyclic_orientation,
    is_forest,
    is_proper_coloring,
    max_out_degree,
    monochromatic_edges,
)


class TestProperColoring:
    def test_proper(self):
        g = path_graph(4)
        assert is_proper_coloring(g, [0, 1, 0, 1])

    def test_improper(self):
        g = path_graph(3)
        assert not is_proper_coloring(g, [0, 0, 1])

    def test_dict_colors(self):
        g = path_graph(3)
        assert is_proper_coloring(g, {0: 0, 1: 1, 2: 0})
        assert not is_proper_coloring(g, {0: 0, 1: 1})  # missing vertex

    def test_count_colors(self):
        g = cycle_graph(4)
        assert count_colors(g, [0, 1, 0, 1]) == 2

    def test_monochromatic_edges(self):
        g = path_graph(4)
        mono = monochromatic_edges(g, [0, 0, 1, 1])
        assert mono == [(0, 1), (2, 3)]


class TestForestCheck:
    def test_forest(self):
        assert is_forest(4, [(0, 1), (1, 2)])

    def test_cycle_not_forest(self):
        assert not is_forest(3, [(0, 1), (1, 2), (2, 0)])

    def test_empty(self):
        assert is_forest(3, [])


class TestOrientation:
    def test_acyclic_orientation(self):
        g = cycle_graph(3)
        # Orient 0->1, 1->2, 0->2: acyclic.
        orientation = {(0, 1): 1, (1, 2): 2, (0, 2): 2}
        assert is_acyclic_orientation(g, orientation)
        assert max_out_degree(g, orientation) == 2

    def test_cyclic_orientation(self):
        g = cycle_graph(3)
        orientation = {(0, 1): 1, (1, 2): 2, (0, 2): 0}
        assert not is_acyclic_orientation(g, orientation)

    def test_invalid_head_rejected(self):
        g = path_graph(2)
        assert not is_acyclic_orientation(g, {(0, 1): 5})

    def test_missing_edge_rejected(self):
        g = path_graph(3)
        assert not is_acyclic_orientation(g, {(0, 1): 1})

    def test_max_out_degree_sink_source(self):
        g = complete_graph(3)
        orientation = {(0, 1): 1, (0, 2): 2, (1, 2): 2}  # 2 is the sink
        assert max_out_degree(g, orientation) == 2
