"""Tests for GF(2) linear algebra against brute-force enumeration."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.gf2 import GF2System, gf2_rank, gf2_solution_count_log2


def _brute_count(rows: list[int], rhs: list[int], nvars: int) -> int:
    count = 0
    for bits in itertools.product((0, 1), repeat=nvars):
        value = sum(b << i for i, b in enumerate(bits))
        if all(
            bin(row & value).count("1") % 2 == b for row, b in zip(rows, rhs)
        ):
            count += 1
    return count


class TestRank:
    def test_empty(self):
        assert gf2_rank([]) == 0

    def test_identity(self):
        assert gf2_rank([0b001, 0b010, 0b100]) == 3

    def test_dependent_rows(self):
        assert gf2_rank([0b011, 0b101, 0b110]) == 2  # third = xor of first two

    def test_zero_rows_ignored(self):
        assert gf2_rank([0, 0, 0b1]) == 1


class TestSolutionCount:
    def test_unconstrained(self):
        assert gf2_solution_count_log2([], [], 4) == 4

    def test_single_equation_halves(self):
        assert gf2_solution_count_log2([0b11], [0], 4) == 3

    def test_inconsistent_returns_none(self):
        # x1 = 0 and x1 = 1
        assert gf2_solution_count_log2([0b1, 0b1], [0, 1], 3) is None

    @given(
        st.integers(min_value=1, max_value=6).flatmap(
            lambda nv: st.tuples(
                st.just(nv),
                st.lists(
                    st.tuples(
                        st.integers(0, 2**nv - 1), st.integers(0, 1)
                    ),
                    max_size=6,
                ),
            )
        )
    )
    def test_matches_brute_force(self, data):
        nvars, eqs = data
        rows = [r for r, __ in eqs]
        rhs = [b for __, b in eqs]
        log2 = gf2_solution_count_log2(rows, rhs, nvars)
        brute = _brute_count(rows, rhs, nvars)
        if log2 is None:
            assert brute == 0
        else:
            assert brute == 2**log2


class TestGF2System:
    def test_incremental_matches_batch(self):
        sys = GF2System(4)
        sys.add_equation(0b0011, 1)
        sys.add_equation(0b0101, 0)
        assert sys.solution_count_log2() == 2
        assert sys.consistent

    def test_inconsistency_flag(self):
        sys = GF2System(2)
        sys.add_equation(0b01, 0)
        sys.add_equation(0b01, 1)
        assert not sys.consistent
        assert sys.solution_count_log2() is None

    def test_probability_with_unconditional(self):
        sys = GF2System(3)
        # P[x0 = 0] over uniform 3-bit strings = 1/2.
        assert sys.probability_with([0b001], [0]) == pytest.approx(0.5)

    def test_probability_with_conditioning(self):
        sys = GF2System(3)
        sys.add_equation(0b001, 1)  # x0 = 1
        # P[x0 xor x1 = 1 | x0 = 1] = P[x1 = 0] = 1/2.
        assert sys.probability_with([0b011], [1]) == pytest.approx(0.5)
        # P[x0 = 0 | x0 = 1] = 0.
        assert sys.probability_with([0b001], [0]) == 0.0

    def test_probability_of_implied_event_is_one(self):
        sys = GF2System(3)
        sys.add_equation(0b011, 1)
        assert sys.probability_with([0b011], [1]) == 1.0

    def test_copy_is_independent(self):
        sys = GF2System(3)
        sys.add_equation(0b001, 1)
        clone = sys.copy()
        clone.add_equation(0b010, 0)
        assert sys.rank == 1
        assert clone.rank == 2

    def test_conditioning_on_inconsistent_raises(self):
        sys = GF2System(1)
        sys.add_equation(0b1, 0)
        sys.add_equation(0b1, 1)
        with pytest.raises(ValueError):
            sys.probability_with([0b1], [0])

    @given(
        st.lists(
            st.tuples(st.integers(0, 31), st.integers(0, 1)), max_size=6
        ),
        st.lists(
            st.tuples(st.integers(0, 31), st.integers(0, 1)),
            min_size=1,
            max_size=3,
        ),
    )
    def test_probability_matches_brute_force(self, base_eqs, query_eqs):
        nvars = 5
        sys = GF2System(nvars)
        for row, b in base_eqs:
            sys.add_equation(row, b)
        if not sys.consistent:
            return
        base_rows = [r for r, __ in base_eqs]
        base_rhs = [b for __, b in base_eqs]
        joint_rows = base_rows + [r for r, __ in query_eqs]
        joint_rhs = base_rhs + [b for __, b in query_eqs]
        base_count = _brute_count(base_rows, base_rhs, nvars)
        joint_count = _brute_count(joint_rows, joint_rhs, nvars)
        expected = joint_count / base_count
        assert sys.probability_with(
            [r for r, __ in query_eqs], [b for __, b in query_eqs]
        ) == pytest.approx(expected)
