"""Shared fixtures and options for the test suite.

Adds two execution knobs:

- ``--workers N`` — worker-process count the parallel-equivalence suite
  exercises on top of its built-in {1, 2, 4} matrix (defaults to
  ``$REPRO_WORKERS`` or 1, so the CI matrix leg that exports
  ``REPRO_WORKERS=2`` routes every columnar lca round through the pool).
- ``--slow`` — opt into tests marked ``slow`` (full-size shapes for the
  differential harness); they are deselected by default so the tier-1
  run stays fast, and CI's cron/label-gated job turns them on.
"""

from __future__ import annotations

import pytest

from repro.ampc.pool import resolve_workers
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_2d,
    path_graph,
    random_tree,
    star_graph,
    union_of_random_forests,
)
from repro.graphs.graph import Graph


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--workers",
        type=int,
        default=resolve_workers(None),
        help="worker processes the parallel-equivalence suite exercises "
        "in addition to its built-in matrix (default: $REPRO_WORKERS, "
        'which may be a count or "auto")',
    )
    parser.addoption(
        "--slow",
        action="store_true",
        default=False,
        help="run tests marked 'slow' (full-size differential shapes)",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: full-size shapes, skipped unless --slow is given "
        "(CI runs them in the cron/label-gated job)",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if config.getoption("--slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow shape; opt in with --slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def workers_option(request: pytest.FixtureRequest) -> int:
    """The --workers option value (>= 1)."""
    return max(1, int(request.config.getoption("--workers")))


@pytest.fixture
def triangle() -> Graph:
    return complete_graph(3)


@pytest.fixture
def small_tree() -> Graph:
    return random_tree(30, seed=100)


@pytest.fixture
def forest_union() -> Graph:
    """Union of 3 random spanning trees on 120 vertices: arboricity <= 3."""
    return union_of_random_forests(120, 3, seed=101)


@pytest.fixture
def small_grid() -> Graph:
    return grid_2d(6, 6)


@pytest.fixture(
    params=["path", "cycle", "star", "grid", "tree", "forests", "clique"]
)
def assorted_graph(request) -> Graph:
    """A representative zoo of small graphs for cross-cutting invariants."""
    return {
        "path": path_graph(15),
        "cycle": cycle_graph(12),
        "star": star_graph(20),
        "grid": grid_2d(5, 5),
        "tree": random_tree(40, seed=102),
        "forests": union_of_random_forests(60, 2, seed=103),
        "clique": complete_graph(8),
    }[request.param]
