"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_2d,
    path_graph,
    random_tree,
    star_graph,
    union_of_random_forests,
)
from repro.graphs.graph import Graph


@pytest.fixture
def triangle() -> Graph:
    return complete_graph(3)


@pytest.fixture
def small_tree() -> Graph:
    return random_tree(30, seed=100)


@pytest.fixture
def forest_union() -> Graph:
    """Union of 3 random spanning trees on 120 vertices: arboricity <= 3."""
    return union_of_random_forests(120, 3, seed=101)


@pytest.fixture
def small_grid() -> Graph:
    return grid_2d(6, 6)


@pytest.fixture(
    params=["path", "cycle", "star", "grid", "tree", "forests", "clique"]
)
def assorted_graph(request) -> Graph:
    """A representative zoo of small graphs for cross-cutting invariants."""
    return {
        "path": path_graph(15),
        "cycle": cycle_graph(12),
        "star": star_graph(20),
        "grid": grid_2d(5, 5),
        "tree": random_tree(40, seed=102),
        "forests": union_of_random_forests(60, 2, seed=103),
        "clique": complete_graph(8),
    }[request.param]
