"""Cross-module property suite: the paper's invariant chain end to end.

Hypothesis generates random sparse graphs through a shared strategy; each
test checks one link of the chain

    arboricity bounds -> β-partition -> orientation -> coloring -> MIS

holding simultaneously, plus the determinism and monotonicity facts the
analyses lean on.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.greedy import orientation_greedy_coloring
from repro.coloring.mis import is_maximal_independent_set, mis_from_coloring
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.core.orientation import orient_by_partition
from repro.graphs.arboricity import degeneracy, density_lower_bound
from repro.graphs.generators import union_of_random_forests
from repro.graphs.validation import is_proper_coloring
from repro.lca.coin_game import CoinDroppingGame
from repro.lca.oracle import GraphOracle
from repro.partition.beta_partition import INFINITY
from repro.partition.dependency import dependency_set
from repro.partition.induced import induced_beta_partition, natural_beta_partition
from repro.util.rng import SplitMix64

sparse_graphs = st.tuples(
    st.integers(min_value=20, max_value=80),  # n
    st.integers(min_value=1, max_value=3),  # k forests
    st.integers(min_value=0, max_value=2**31),  # seed
).map(lambda t: (union_of_random_forests(t[0], t[1], seed=t[2]), t[1]))


class TestChainInvariants:
    @given(sparse_graphs)
    @settings(max_examples=10, deadline=None)
    def test_full_chain(self, data):
        graph, k = data
        # (1) arboricity machinery consistent
        d = degeneracy(graph)
        assert density_lower_bound(graph) <= max(k, 1)
        assert d <= 2 * k  # degeneracy <= 2*alpha - 1 <= 2k
        # (2) β-partition valid + complete
        beta = 3 * max(k, 1)
        outcome = beta_partition_ampc(graph, beta)
        assert outcome.partition.is_valid(graph, beta)
        assert not outcome.partition.is_partial(graph.vertices())
        # (3) orientation bounded + acyclic
        ori = orient_by_partition(graph, outcome.partition)
        assert ori.max_out_degree() <= beta
        assert ori.is_acyclic()
        # (4) sinks-first coloring within out-degree+1
        colors = orientation_greedy_coloring(ori)
        assert is_proper_coloring(graph, colors)
        assert max(colors) <= ori.max_out_degree()
        # (5) MIS from the coloring is maximal-independent
        mis = mis_from_coloring(graph, colors)
        assert is_maximal_independent_set(graph, mis)

    @given(sparse_graphs)
    @settings(max_examples=10, deadline=None)
    def test_partition_size_logarithmic(self, data):
        graph, k = data
        beta = 3 * max(k, 1)
        partition = natural_beta_partition(graph, beta)
        bound = math.log(graph.num_vertices) / math.log(1.5) + 1
        assert partition.size() <= bound


class TestGameInvariants:
    @given(sparse_graphs, st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_simulated_layer_sandwich(self, data, pick):
        """ℓ(v) <= game layer; equality when the game certifies (clip)."""
        graph, k = data
        beta = 3 * max(k, 1)
        natural = natural_beta_partition(graph, beta)
        v = pick % graph.num_vertices
        x = (beta + 1) ** 2
        res = CoinDroppingGame(GraphOracle(graph), v, x=x, beta=beta).run()
        assert res.layer >= natural.layer(v)
        if res.layer != INFINITY:
            # certified answers are exactly natural (Lemma 4.4 direction)
            assert res.layer == natural.layer(v)

    @given(sparse_graphs, st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_proof_contains_explored_dependency(self, data, pick):
        """If the game certifies v, its proof's layers on the explored set
        agree with the natural partition restricted there (Lemma 3.14)."""
        graph, k = data
        beta = 3 * max(k, 1)
        natural = natural_beta_partition(graph, beta)
        v = pick % graph.num_vertices
        res = CoinDroppingGame(
            GraphOracle(graph), v, x=(beta + 1) ** 2, beta=beta
        ).run()
        if res.layer == INFINITY:
            return
        dep = dependency_set(graph, natural, v)
        if dep <= res.explored:
            for w in dep:
                if w in res.proof.layers:
                    assert res.proof.layer(w) == natural.layer(w)


class TestSubsetMonotonicityRandomized:
    @given(sparse_graphs, st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_induced_chain_is_monotone(self, data, seed):
        """σ_{S1} >= σ_{S2} >= σ_{S3} pointwise for S1 ⊆ S2 ⊆ S3."""
        graph, k = data
        beta = 3 * max(k, 1)
        rng = SplitMix64(seed)
        s1 = {v for v in graph.vertices() if rng.random() < 0.3}
        s2 = s1 | {v for v in graph.vertices() if rng.random() < 0.3}
        s3 = s2 | {v for v in graph.vertices() if rng.random() < 0.3}
        p1 = induced_beta_partition(graph, s1, beta)
        p2 = induced_beta_partition(graph, s2, beta)
        p3 = induced_beta_partition(graph, s3, beta)
        for v in graph.vertices():
            assert p1.layer(v) >= p2.layer(v) >= p3.layer(v)
