"""Tests for the failing exploration baselines (Section 2.1)."""

from __future__ import annotations

from repro.graphs.generators import path_graph, skewed_dependency_gadget, star_graph
from repro.lca.baselines import bfs_explore, dfs_explore, naive_coin_explore
from repro.lca.coin_game import CoinDroppingGame
from repro.lca.oracle import GraphOracle
from repro.partition.dependency import dependency_set
from repro.partition.induced import natural_beta_partition


class TestBFS:
    def test_explores_in_distance_order(self):
        g = path_graph(6)
        explored = bfs_explore(GraphOracle(g), 0, query_budget=7)
        # Budget 7: explore(0)=2 probes, explore(1)=3, explore(2)=3 stops.
        assert 0 in explored and 1 in explored

    def test_budget_zero_explores_nothing(self):
        g = path_graph(4)
        assert bfs_explore(GraphOracle(g), 0, query_budget=0) == set()

    def test_large_budget_covers_component(self):
        g = star_graph(8)
        explored = bfs_explore(GraphOracle(g), 0, query_budget=10**6)
        assert explored == set(range(8))


class TestDFS:
    def test_dives_deep_first(self):
        g = path_graph(10)
        # Budget check happens before each explore: 2+3+3+3 = 11 < 12, so a
        # fifth vertex still gets explored before the budget trips.
        explored = dfs_explore(GraphOracle(g), 0, query_budget=12)
        assert explored == {0, 1, 2, 3, 4}

    def test_large_budget_covers_component(self):
        g = star_graph(8)
        explored = dfs_explore(GraphOracle(g), 0, query_budget=10**6)
        assert explored == set(range(8))


class TestNaiveCoins:
    def test_spreads_uniformly(self):
        g = star_graph(5)
        explored = naive_coin_explore(GraphOracle(g), 0, x=16)
        assert explored == set(range(5))

    def test_too_few_coins_stall(self):
        g = star_graph(9)
        # 4 coins < degree 8: the hub can never forward.
        explored = naive_coin_explore(GraphOracle(g), 0, x=4)
        assert explored == {0}


class TestSeparationOnGadget:
    """The paper's qualitative claim: with comparable budgets the adaptive
    game certifies w_0's layer and the baselines do not."""

    def test_adaptive_beats_naive(self):
        beta, length, fan = 3, 4, 30
        g, chain = skewed_dependency_gadget(beta, length, fan, decoy_fan=20)
        natural = natural_beta_partition(g, beta)
        target = dependency_set(g, natural, chain[0])
        x = (beta + 1) ** length
        adaptive = CoinDroppingGame(GraphOracle(g), chain[0], x, beta).run()
        assert adaptive.layer == natural.layer(chain[0])
        naive = naive_coin_explore(GraphOracle(g), chain[0], x)
        adaptive_cov = len(adaptive.explored & target) / len(target)
        naive_cov = len(naive & target) / len(target)
        assert adaptive_cov > 2 * naive_cov

    def test_adaptive_beats_bfs_and_dfs_at_equal_budget(self):
        beta, length, fan = 3, 4, 30
        g, chain = skewed_dependency_gadget(beta, length, fan, decoy_fan=40)
        natural = natural_beta_partition(g, beta)
        target = dependency_set(g, natural, chain[0])
        x = (beta + 1) ** length
        adaptive = CoinDroppingGame(GraphOracle(g), chain[0], x, beta).run()
        budget = adaptive.queries
        bfs = bfs_explore(GraphOracle(g), chain[0], budget)
        dfs = dfs_explore(GraphOracle(g), chain[0], budget)
        adaptive_cov = len(adaptive.explored & target) / len(target)
        assert adaptive_cov > len(bfs & target) / len(target)
        assert adaptive_cov > len(dfs & target) / len(target)
