"""Tests for the failing exploration baselines (Section 2.1)."""

from __future__ import annotations

from repro.graphs.generators import path_graph, skewed_dependency_gadget, star_graph
from repro.lca.baselines import bfs_explore, dfs_explore, naive_coin_explore
from repro.lca.coin_game import CoinDroppingGame
from repro.lca.oracle import GraphOracle
from repro.partition.dependency import dependency_set
from repro.partition.induced import natural_beta_partition


class TestBFS:
    def test_explores_in_distance_order(self):
        g = path_graph(6)
        explored = bfs_explore(GraphOracle(g), 0, query_budget=7)
        # Budget 7: explore(0)=2 probes, explore(1)=3, explore(2)=3 stops.
        assert 0 in explored and 1 in explored

    def test_budget_zero_explores_nothing(self):
        g = path_graph(4)
        assert bfs_explore(GraphOracle(g), 0, query_budget=0) == set()

    def test_large_budget_covers_component(self):
        g = star_graph(8)
        explored = bfs_explore(GraphOracle(g), 0, query_budget=10**6)
        assert explored == set(range(8))


class TestDFS:
    def test_dives_deep_first(self):
        g = path_graph(10)
        # Budget check happens before each explore: 2+3+3+3 = 11 < 12, so a
        # fifth vertex still gets explored before the budget trips.
        explored = dfs_explore(GraphOracle(g), 0, query_budget=12)
        assert explored == {0, 1, 2, 3, 4}

    def test_large_budget_covers_component(self):
        g = star_graph(8)
        explored = dfs_explore(GraphOracle(g), 0, query_budget=10**6)
        assert explored == set(range(8))


class TestNaiveCoins:
    def test_spreads_uniformly(self):
        g = star_graph(5)
        explored = naive_coin_explore(GraphOracle(g), 0, x=16)
        assert explored == set(range(5))

    def test_too_few_coins_stall(self):
        g = star_graph(9)
        # 4 coins < degree 8: the hub can never forward.
        explored = naive_coin_explore(GraphOracle(g), 0, x=4)
        assert explored == {0}


class TestScaledIntegerCoins:
    """The scaled-integer port must replay the Fraction dynamics exactly."""

    def test_matches_fraction_oracle_on_gadget(self):
        from repro.graphs.generators import skewed_dependency_gadget
        from repro.lca.baselines import _naive_coin_explore_fractions

        g, chain = skewed_dependency_gadget(3, 4, 30, decoy_fan=20)
        for x in (4, 16, 64, 256):
            fast = naive_coin_explore(GraphOracle(g), chain[0], x)
            ref = _naive_coin_explore_fractions(GraphOracle(g), chain[0], x)
            assert fast == ref

    def test_matches_fraction_oracle_randomized_small_horizons(self):
        from repro.graphs.generators import random_gnm
        from repro.lca.baselines import _naive_coin_explore_fractions

        for seed in range(12):
            n = 10 + seed * 3
            g = random_gnm(n, 2 * n, seed=seed)
            for horizon in (1, 2, 5):
                fast = naive_coin_explore(
                    GraphOracle(g), seed % n, x=27, max_iterations=horizon
                )
                ref = _naive_coin_explore_fractions(
                    GraphOracle(g), seed % n, x=27, max_iterations=horizon
                )
                assert fast == ref, (seed, horizon)

    def test_mid_run_fraction_fallback_matches_oracle(self, monkeypatch):
        """Past the scale bit cap, amounts convert to Fractions exactly."""
        import repro.lca.baselines as baselines
        from repro.graphs.generators import cycle_graph
        from repro.lca.baselines import _naive_coin_explore_fractions

        monkeypatch.setattr(baselines, "_SCALE_BIT_CAP", 8)
        g = cycle_graph(12)  # degree-2 everywhere: coins circulate long
        for x in (8, 64):
            fast = naive_coin_explore(GraphOracle(g), 0, x=x)
            ref = _naive_coin_explore_fractions(GraphOracle(g), 0, x=x)
            assert fast == ref

    def test_probe_counts_match_oracle(self):
        from repro.lca.baselines import _naive_coin_explore_fractions

        g = star_graph(9)
        fast_oracle, ref_oracle = GraphOracle(g), GraphOracle(g)
        assert naive_coin_explore(fast_oracle, 0, x=16) == \
            _naive_coin_explore_fractions(ref_oracle, 0, x=16)
        assert fast_oracle.stats.total == ref_oracle.stats.total


class TestSeparationOnGadget:
    """The paper's qualitative claim: with comparable budgets the adaptive
    game certifies w_0's layer and the baselines do not."""

    def test_adaptive_beats_naive(self):
        beta, length, fan = 3, 4, 30
        g, chain = skewed_dependency_gadget(beta, length, fan, decoy_fan=20)
        natural = natural_beta_partition(g, beta)
        target = dependency_set(g, natural, chain[0])
        x = (beta + 1) ** length
        adaptive = CoinDroppingGame(GraphOracle(g), chain[0], x, beta).run()
        assert adaptive.layer == natural.layer(chain[0])
        naive = naive_coin_explore(GraphOracle(g), chain[0], x)
        adaptive_cov = len(adaptive.explored & target) / len(target)
        naive_cov = len(naive & target) / len(target)
        assert adaptive_cov > 2 * naive_cov

    def test_adaptive_beats_bfs_and_dfs_at_equal_budget(self):
        beta, length, fan = 3, 4, 30
        g, chain = skewed_dependency_gadget(beta, length, fan, decoy_fan=40)
        natural = natural_beta_partition(g, beta)
        target = dependency_set(g, natural, chain[0])
        x = (beta + 1) ** length
        adaptive = CoinDroppingGame(GraphOracle(g), chain[0], x, beta).run()
        budget = adaptive.queries
        bfs = bfs_explore(GraphOracle(g), chain[0], budget)
        dfs = dfs_explore(GraphOracle(g), chain[0], budget)
        adaptive_cov = len(adaptive.explored & target) / len(target)
        assert adaptive_cov > len(bfs & target) / len(target)
        assert adaptive_cov > len(dfs & target) / len(target)
