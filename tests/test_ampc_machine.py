"""Tests for the budgeted machine context."""

from __future__ import annotations

import pytest

from repro.ampc.dds import EMPTY, DataStore
from repro.ampc.machine import MachineContext, SpaceExceeded


def _make(space=5, strict=True):
    prev = DataStore("prev")
    prev.write("a", 1)
    prev.write("multi", 1)
    prev.write("multi", 2)
    nxt = DataStore("next")
    ctx = MachineContext("M0", prev, nxt, space_limit=space, strict=strict)
    return ctx, prev, nxt


class TestMachineContext:
    def test_read_charges(self):
        ctx, __, ___ = _make()
        assert ctx.read("a") == 1
        assert ctx.reads == 1
        assert ctx.communication == 1

    def test_read_missing_returns_empty(self):
        ctx, __, ___ = _make()
        assert ctx.read("nope") is EMPTY

    def test_indexed_read(self):
        ctx, __, ___ = _make()
        assert ctx.read_indexed("multi", 1) == 2

    def test_count_charges_one(self):
        ctx, __, ___ = _make()
        assert ctx.count("multi") == 2
        assert ctx.reads == 1

    def test_write_goes_to_target(self):
        ctx, __, nxt = _make()
        ctx.write("out", 9)
        assert nxt.read("out") == 9
        assert ctx.writes == 1

    def test_strict_budget_enforced(self):
        ctx, __, ___ = _make(space=2, strict=True)
        ctx.read("a")
        ctx.read("a")
        with pytest.raises(SpaceExceeded):
            ctx.read("a")

    def test_lenient_budget_records_only(self):
        ctx, __, ___ = _make(space=1, strict=False)
        for _ in range(5):
            ctx.read("a")
        assert ctx.reads == 5  # no exception
