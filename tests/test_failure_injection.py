"""Failure injection: corrupted artifacts and broken workers must be *detected*.

Every experiment trusts the validators to fail loudly; these tests mutate
correct outputs in targeted ways and assert the validators notice.  A
validator that silently accepts garbage would make every green table in
EXPERIMENTS.md meaningless.  The worker-pool section injects faults into
the parallel coin-game engine — an exception mid-round, a poisoned
(unpicklable) result, a worker death, a pool used after shutdown — and
asserts each surfaces as one clear :class:`WorkerPoolError` with no
orphan worker processes left behind.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampc.pool import (
    _FAULT_ENV,
    CoinGamePool,
    WorkerPoolError,
    close_shared_pools,
)
from repro.coloring.pipeline import coloring_two_plus_eps
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.core.orientation import Orientation, orient_by_partition
from repro.graphs.generators import random_gnm, union_of_random_forests
from repro.graphs.validation import is_proper_coloring
from repro.partition.beta_partition import INFINITY
from repro.partition.induced import natural_beta_partition
from repro.util.rng import SplitMix64


def _graph(seed: int = 60):
    return union_of_random_forests(70, 2, seed=seed)


class TestColoringCorruption:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_copying_a_neighbor_color_is_detected(self, seed):
        g = _graph()
        res = coloring_two_plus_eps(g, 2, eps=1.0)
        colors = list(res.colors)
        rng = SplitMix64(seed)
        # Corrupt: make a random non-isolated vertex copy a neighbor.
        for _ in range(100):
            v = rng.randrange(g.num_vertices)
            if g.degree(v):
                w = int(g.neighbors(v)[rng.randrange(g.degree(v))])
                colors[v] = colors[w]
                break
        assert not is_proper_coloring(g, colors)

    def test_missing_vertex_is_detected(self):
        g = _graph()
        res = coloring_two_plus_eps(g, 2, eps=1.0)
        colors = {v: res.colors[v] for v in g.vertices()}
        del colors[0]
        assert not is_proper_coloring(g, colors)


class TestPartitionCorruption:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_demoting_a_hub_is_detected(self, seed):
        g = _graph()
        beta = 6
        partition = natural_beta_partition(g, beta)
        rng = SplitMix64(seed)
        # Corrupt: drop a vertex of degree > beta to layer 0 while its
        # neighbors keep higher-or-equal layers.
        heavy = [v for v in g.vertices() if g.degree(v) > beta]
        if not heavy:
            return
        victim = heavy[rng.randrange(len(heavy))]
        mutated = partition.copy()
        mutated.layers[victim] = 0
        for w in g.neighbors(victim):
            mutated.layers[int(w)] = 5
        assert not mutated.is_valid(g, beta)

    def test_promoting_everything_to_one_layer_fails_for_dense(self):
        from repro.graphs.generators import complete_graph

        g = complete_graph(9)
        flat = natural_beta_partition(g, 8).copy()
        # All in one layer: every vertex has 8 same-layer neighbors > beta=4.
        assert not flat.is_valid(g, 4)


class TestOrientationCorruption:
    def test_reversed_edge_creates_cycle_or_is_caught(self):
        g = _graph()
        beta = 6
        partition = natural_beta_partition(g, beta)
        ori = orient_by_partition(g, partition)
        # Corrupt: add a back edge for the first directed edge found.
        outs = [list(o) for o in ori.out_neighbors]
        for v, targets in enumerate(outs):
            if targets:
                w = targets[0]
                outs[w].append(v)  # now v <-> w: a 2-cycle
                break
        assert not Orientation(graph=g, out_neighbors=outs).is_acyclic()

    def test_dropping_an_edge_changes_coverage(self):
        g = _graph()
        partition = natural_beta_partition(g, 6)
        ori = orient_by_partition(g, partition)
        directed = sum(len(o) for o in ori.out_neighbors)
        outs = [list(o) for o in ori.out_neighbors]
        for v, targets in enumerate(outs):
            if targets:
                targets.pop()
                break
        assert sum(len(o) for o in outs) == directed - 1  # caught by count


@pytest.fixture
def fresh_pool_env():
    """Isolate pool state: faults only reach workers forked *after* the
    env var is set, so shared pools from earlier tests must not leak in,
    and whatever this test breaks must not leak out."""
    close_shared_pools()
    yield
    os.environ.pop(_FAULT_ENV, None)
    close_shared_pools()
    assert multiprocessing.active_children() == []  # no orphan workers


class TestWorkerPoolFaults:
    def _partition(self, workers):
        # min_pool_games=1 forces dispatch: this round is smaller than
        # the default threshold, and the faults only fire inside workers.
        g = random_gnm(120, 240, seed=13)
        return beta_partition_ampc(
            g, 9, store="columnar", workers=workers, min_pool_games=1
        )

    def test_worker_exception_surfaces_clearly(self, fresh_pool_env):
        os.environ[_FAULT_ENV] = "raise"
        with pytest.raises(WorkerPoolError, match="injected worker fault"):
            self._partition(workers=2)

    def test_unpicklable_result_surfaces_clearly(self, fresh_pool_env):
        os.environ[_FAULT_ENV] = "unpicklable"
        with pytest.raises(WorkerPoolError, match="failed mid-round"):
            self._partition(workers=2)

    def test_worker_death_surfaces_clearly(self, fresh_pool_env):
        os.environ[_FAULT_ENV] = "exit"
        with pytest.raises(WorkerPoolError, match="failed mid-round"):
            self._partition(workers=2)

    def test_faulted_pool_is_closed_and_replaced(self, fresh_pool_env):
        os.environ[_FAULT_ENV] = "raise"
        with pytest.raises(WorkerPoolError):
            self._partition(workers=2)
        assert multiprocessing.active_children() == []
        # The poisoned pool was dropped: clearing the fault and retrying
        # lazily builds a fresh one and succeeds.
        os.environ.pop(_FAULT_ENV)
        outcome = self._partition(workers=2)
        assert outcome.partition.layers == self._partition(workers=1).partition.layers

    def test_serial_path_ignores_fault_hook(self, fresh_pool_env):
        # workers=1 never constructs a pool: the fault hook must be dead
        # code there, and no child process may appear.
        os.environ[_FAULT_ENV] = "raise"
        before = multiprocessing.active_children()
        outcome = self._partition(workers=1)
        assert multiprocessing.active_children() == before
        assert not outcome.partition.is_partial(range(120))

    def test_pool_shutdown_mid_partition_is_loud(self, fresh_pool_env):
        pool = CoinGamePool(workers=2)
        pool.close()
        offsets = np.array([0, 1, 2], dtype=np.int64)
        targets = np.array([1, 0], dtype=np.int64)
        with pytest.raises(WorkerPoolError, match="closed"):
            pool.run_games(
                offsets, targets,
                np.array([0], dtype=np.int64), np.array([0], dtype=np.int64),
                x=4, beta=2, clip=1, horizon=12,
                scale=12, want_records=False,
            )

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            beta_partition_ampc(random_gnm(10, 15, seed=1), 3, workers=0)
        with pytest.raises(ValueError):
            CoinGamePool(workers=1)


class TestGuaranteeTightness:
    def test_beta_partition_validator_rejects_beta_minus_one(self):
        """The natural β-partition is tight: some vertex uses its full β
        budget, so validating against β-1 must fail on dense-enough inputs."""
        g = union_of_random_forests(100, 3, seed=61)
        beta = 7
        partition = natural_beta_partition(g, beta)
        assert partition.is_valid(g, beta)
        budgets = []
        for v in g.vertices():
            lay = partition.layer(v)
            if lay == INFINITY:
                continue
            budgets.append(
                sum(1 for w in g.neighbors(v) if partition.layer(int(w)) >= lay)
            )
        if max(budgets, default=0) == beta:
            assert not partition.is_valid(g, beta - 1)
