"""Failure injection: corrupted artifacts and broken workers must be *detected*.

Every experiment trusts the validators to fail loudly; these tests mutate
correct outputs in targeted ways and assert the validators notice.  A
validator that silently accepts garbage would make every green table in
EXPERIMENTS.md meaningless.  The worker-pool section injects seeded
:class:`~repro.ampc.faults.FaultPlan` faults into the parallel coin-game
engine — an exception mid-round, a poisoned (unpicklable) result, a
worker death — and asserts the round supervisor recovers each one with a
bit-identical partition; with recovery disabled
(``max_shard_retries=0``, ``pool_degrade=False``) the same faults must
surface as one clear, context-carrying :class:`WorkerPoolError` with no
orphan worker processes left behind.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampc import faults
from repro.ampc.engine_config import EngineConfig
from repro.ampc.faults import FaultPlan
from repro.ampc.pool import (
    CoinGamePool,
    WorkerPoolError,
    close_shared_pools,
)
from repro.coloring.pipeline import coloring_two_plus_eps
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.core.orientation import Orientation, orient_by_partition
from repro.graphs.generators import random_gnm, union_of_random_forests
from repro.graphs.validation import is_proper_coloring
from repro.partition.beta_partition import INFINITY
from repro.partition.induced import natural_beta_partition
from repro.util.rng import SplitMix64


def _graph(seed: int = 60):
    return union_of_random_forests(70, 2, seed=seed)


class TestColoringCorruption:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_copying_a_neighbor_color_is_detected(self, seed):
        g = _graph()
        res = coloring_two_plus_eps(g, 2, eps=1.0)
        colors = list(res.colors)
        rng = SplitMix64(seed)
        # Corrupt: make a random non-isolated vertex copy a neighbor.
        for _ in range(100):
            v = rng.randrange(g.num_vertices)
            if g.degree(v):
                w = int(g.neighbors(v)[rng.randrange(g.degree(v))])
                colors[v] = colors[w]
                break
        assert not is_proper_coloring(g, colors)

    def test_missing_vertex_is_detected(self):
        g = _graph()
        res = coloring_two_plus_eps(g, 2, eps=1.0)
        colors = {v: res.colors[v] for v in g.vertices()}
        del colors[0]
        assert not is_proper_coloring(g, colors)


class TestPartitionCorruption:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_demoting_a_hub_is_detected(self, seed):
        g = _graph()
        beta = 6
        partition = natural_beta_partition(g, beta)
        rng = SplitMix64(seed)
        # Corrupt: drop a vertex of degree > beta to layer 0 while its
        # neighbors keep higher-or-equal layers.
        heavy = [v for v in g.vertices() if g.degree(v) > beta]
        if not heavy:
            return
        victim = heavy[rng.randrange(len(heavy))]
        mutated = partition.copy()
        mutated.layers[victim] = 0
        for w in g.neighbors(victim):
            mutated.layers[int(w)] = 5
        assert not mutated.is_valid(g, beta)

    def test_promoting_everything_to_one_layer_fails_for_dense(self):
        from repro.graphs.generators import complete_graph

        g = complete_graph(9)
        flat = natural_beta_partition(g, 8).copy()
        # All in one layer: every vertex has 8 same-layer neighbors > beta=4.
        assert not flat.is_valid(g, 4)


class TestOrientationCorruption:
    def test_reversed_edge_creates_cycle_or_is_caught(self):
        g = _graph()
        beta = 6
        partition = natural_beta_partition(g, beta)
        ori = orient_by_partition(g, partition)
        # Corrupt: add a back edge for the first directed edge found.
        outs = [list(o) for o in ori.out_neighbors]
        for v, targets in enumerate(outs):
            if targets:
                w = targets[0]
                outs[w].append(v)  # now v <-> w: a 2-cycle
                break
        assert not Orientation(graph=g, out_neighbors=outs).is_acyclic()

    def test_dropping_an_edge_changes_coverage(self):
        g = _graph()
        partition = natural_beta_partition(g, 6)
        ori = orient_by_partition(g, partition)
        directed = sum(len(o) for o in ori.out_neighbors)
        outs = [list(o) for o in ori.out_neighbors]
        for v, targets in enumerate(outs):
            if targets:
                targets.pop()
                break
        assert sum(len(o) for o in outs) == directed - 1  # caught by count


@pytest.fixture
def fresh_pool_env():
    """Isolate pool state: shared pools from earlier tests must not leak
    in, and whatever this test breaks must not leak out."""
    close_shared_pools()
    yield
    close_shared_pools()
    assert faults._ACTIVE_SET is False  # no leaked injected plan
    assert multiprocessing.active_children() == []  # no orphan workers


# Every shard of every dispatch faults on its first attempt; retries
# (attempt >= 1) run clean.
_FIRST_ATTEMPT = dict(seed=1, rate=1.0, attempts=1)
# Every attempt faults, forever: with degradation disabled this must
# exhaust the retry budget and raise.
_ALWAYS = dict(seed=1, rate=1.0)

# Recovery disabled: first fault must surface as WorkerPoolError.
_NO_RECOVERY = EngineConfig.from_env().with_overrides(
    max_shard_retries=0, retry_backoff_s=0.0, pool_degrade=False
)
# Fast retries, still bounded, no degradation.
_NO_DEGRADE = EngineConfig.from_env().with_overrides(
    retry_backoff_s=0.0, pool_degrade=False
)


class TestWorkerPoolFaults:
    def _partition(self, workers, config=None):
        # min_pool_games=1 forces dispatch: this round is smaller than
        # the default threshold, and the faults only fire inside workers.
        g = random_gnm(120, 240, seed=13)
        return beta_partition_ampc(
            g, 9, store="columnar", workers=workers, min_pool_games=1,
            config=config,
        )

    def _oracle_layers(self):
        return self._partition(workers=1).partition.layers

    def test_worker_exception_is_recovered(self, fresh_pool_env):
        with faults.inject(FaultPlan(kinds=("crash",), **_FIRST_ATTEMPT)):
            outcome = self._partition(workers=2)
        assert outcome.partition.layers == self._oracle_layers()
        assert outcome.round_recovery["retries"] > 0
        assert outcome.round_recovery["worker_faults"] > 0

    def test_unpicklable_result_is_recovered(self, fresh_pool_env):
        with faults.inject(
            FaultPlan(kinds=("unpicklable",), **_FIRST_ATTEMPT)
        ):
            outcome = self._partition(workers=2)
        assert outcome.partition.layers == self._oracle_layers()
        assert outcome.round_recovery["retries"] > 0

    def test_worker_death_is_recovered(self, fresh_pool_env):
        with faults.inject(FaultPlan(kinds=("exit",), **_FIRST_ATTEMPT)):
            outcome = self._partition(workers=2)
        assert outcome.partition.layers == self._oracle_layers()
        assert outcome.round_recovery["respawns"] > 0

    def test_corrupted_result_is_rejected_and_recovered(
        self, fresh_pool_env
    ):
        with faults.inject(FaultPlan(kinds=("garbage",), **_FIRST_ATTEMPT)):
            outcome = self._partition(workers=2)
        assert outcome.partition.layers == self._oracle_layers()
        assert outcome.round_recovery["checksum_rejects"] > 0

    def test_worker_exception_surfaces_clearly(self, fresh_pool_env):
        with faults.inject(FaultPlan(kinds=("crash",), **_ALWAYS)):
            with pytest.raises(
                WorkerPoolError, match="injected worker fault"
            ) as info:
                self._partition(workers=2, config=_NO_RECOVERY)
        err = info.value
        assert err.shard is not None and err.attempts == 1
        assert err.outcomes and "InjectedFault" in err.outcomes[0]
        assert isinstance(err.__cause__, Exception)

    def test_retry_exhaustion_surfaces_attempt_history(self, fresh_pool_env):
        with faults.inject(FaultPlan(kinds=("crash",), **_ALWAYS)):
            with pytest.raises(WorkerPoolError) as info:
                self._partition(workers=2, config=_NO_DEGRADE)
        err = info.value
        # max_shard_retries=2 default: initial try + 2 retries, all logged.
        assert err.attempts == 3
        assert len(err.outcomes) == 3
        assert err.__cause__ is err.cause

    def test_faulted_pool_is_closed_and_replaced(self, fresh_pool_env):
        with faults.inject(FaultPlan(kinds=("crash",), **_ALWAYS)):
            with pytest.raises(WorkerPoolError):
                self._partition(workers=2, config=_NO_RECOVERY)
        assert multiprocessing.active_children() == []
        # The poisoned pool was dropped: clearing the fault and retrying
        # lazily builds a fresh one and succeeds.
        with faults.inject(None):
            outcome = self._partition(workers=2)
        assert outcome.partition.layers == self._oracle_layers()

    def test_serial_path_ignores_fault_plan(self, fresh_pool_env):
        # workers=1 never constructs a pool: the fault hooks must be dead
        # code there, and no child process may appear.
        with faults.inject(FaultPlan(kinds=("crash",), **_ALWAYS)):
            before = multiprocessing.active_children()
            outcome = self._partition(workers=1)
            assert multiprocessing.active_children() == before
        assert not outcome.partition.is_partial(range(120))

    def test_pool_shutdown_mid_partition_is_loud(self, fresh_pool_env):
        pool = CoinGamePool(workers=2)
        pool.close()
        offsets = np.array([0, 1, 2], dtype=np.int64)
        targets = np.array([1, 0], dtype=np.int64)
        with pytest.raises(WorkerPoolError, match="closed"):
            pool.run_games(
                offsets, targets,
                np.array([0], dtype=np.int64), np.array([0], dtype=np.int64),
                x=4, beta=2, clip=1, horizon=12,
                scale=12, want_records=False,
            )

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            beta_partition_ampc(random_gnm(10, 15, seed=1), 3, workers=0)
        with pytest.raises(ValueError):
            CoinGamePool(workers=1)


class TestGuaranteeTightness:
    def test_beta_partition_validator_rejects_beta_minus_one(self):
        """The natural β-partition is tight: some vertex uses its full β
        budget, so validating against β-1 must fail on dense-enough inputs."""
        g = union_of_random_forests(100, 3, seed=61)
        beta = 7
        partition = natural_beta_partition(g, beta)
        assert partition.is_valid(g, beta)
        budgets = []
        for v in g.vertices():
            lay = partition.layer(v)
            if lay == INFINITY:
                continue
            budgets.append(
                sum(1 for w in g.neighbors(v) if partition.layer(int(w)) >= lay)
            )
        if max(budgets, default=0) == beta:
            assert not partition.is_valid(g, beta - 1)
