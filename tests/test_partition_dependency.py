"""Tests for dependency graphs: Definition 3.9, Observation 3.10, Lemma 3.11."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    complete_ary_tree,
    path_graph,
    star_graph,
    union_of_random_forests,
)
from repro.partition.beta_partition import INFINITY, PartialBetaPartition
from repro.partition.dependency import dependency_set, dependency_sizes
from repro.partition.induced import natural_beta_partition
from repro.util.rng import SplitMix64


class TestDefinition39:
    def test_infinity_vertex_empty(self):
        g = path_graph(3)
        p = PartialBetaPartition({0: INFINITY, 1: 0, 2: 0})
        assert dependency_set(g, p, 0) == set()

    def test_layer_zero_is_singleton(self):
        g = path_graph(3)
        p = natural_beta_partition(g, 2)
        assert dependency_set(g, p, 1) == {1}

    def test_star_hub_depends_on_leaves(self):
        g = star_graph(5)
        p = natural_beta_partition(g, 1)
        assert dependency_set(g, p, 0) == set(range(5))

    def test_tree_root_depends_on_whole_tree(self):
        beta = 2
        g = complete_ary_tree(beta + 1, 2)
        p = natural_beta_partition(g, beta)
        assert dependency_set(g, p, 0) == set(g.vertices())

    def test_strictly_decreasing_only(self):
        # Two hubs sharing leaves: each hub's dependency excludes the other
        # (same layer).
        from repro.graphs.graph import Graph

        edges = [(0, i) for i in range(2, 6)] + [(1, i) for i in range(2, 6)]
        g = Graph.from_edges(6, edges)
        p = natural_beta_partition(g, 2)
        assert p.layer(0) == p.layer(1) == 1
        dep = dependency_set(g, p, 0)
        assert 1 not in dep


class TestObservation310Nesting:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_nested(self, seed):
        g = union_of_random_forests(50, 2, seed=seed)
        p = natural_beta_partition(g, 5)
        rng = SplitMix64(seed)
        v = rng.randrange(g.num_vertices)
        dep_v = dependency_set(g, p, v)
        for w in dep_v:
            assert dependency_set(g, p, w) <= dep_v


class TestLemma311:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(3, 8))
    @settings(max_examples=20, deadline=None)
    def test_at_most_beta_neighbors_outside(self, seed, beta):
        g = union_of_random_forests(50, 2, seed=seed)
        p = natural_beta_partition(g, beta)
        for v in g.vertices():
            if p.layer(v) == INFINITY:
                continue
            dep = dependency_set(g, p, v)
            outside = sum(1 for w in g.neighbors(v) if int(w) not in dep)
            assert outside <= beta


class TestDependencySizes:
    def test_matches_individual(self):
        g = union_of_random_forests(30, 2, seed=9)
        p = natural_beta_partition(g, 5)
        sizes = dependency_sizes(g, p)
        for v in g.vertices():
            assert sizes[v] == len(dependency_set(g, p, v))
