"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestColorCommand:
    def test_default_pipeline(self, capsys):
        rc = main(["color", "--n", "60", "--k", "2", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "colors used" in out
        assert "AMPC rounds" in out

    def test_variant_selection(self, capsys):
        rc = main(["color", "--n", "50", "--variant", "alpha_squared", "--alpha", "2"])
        assert rc == 0
        assert "variant=alpha_squared" in capsys.readouterr().out

    def test_from_edge_list(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 3\n")
        rc = main(["color", "--input", str(path), "--alpha", "1"])
        assert rc == 0
        assert "n=4" in capsys.readouterr().out


class TestPartitionCommand:
    def test_reports_resources(self, capsys):
        rc = main(["partition", "--n", "80", "--k", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "layers:" in out
        assert "valid: True" in out


class TestExperimentsCommand:
    def test_runs_by_prefix(self, capsys):
        rc = main(["experiments", "E11"])
        assert rc == 0
        assert "alpha_exact" in capsys.readouterr().out

    def test_unknown_prefix_errors(self, capsys):
        rc = main(["experiments", "ZZ"])
        assert rc == 1
        assert "no experiment" in capsys.readouterr().err


class TestInfoCommand:
    def test_basic_stats(self, capsys):
        rc = main(["info", "--n", "50", "--k", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "degeneracy" in out

    def test_exact_arboricity_flag(self, capsys):
        rc = main(["info", "--n", "40", "--k", "2", "--exact"])
        assert rc == 0
        assert "exact arboricity" in capsys.readouterr().out

    def test_generators(self, capsys):
        for gen in ("tree", "grid", "pref-attach", "gnm"):
            rc = main(["info", "--generator", gen, "--n", "30", "--k", "2"])
            assert rc == 0


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
