"""Tests for the (x, β, F)-coin dropping game (Section 4)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    complete_ary_tree,
    path_graph,
    star_graph,
    union_of_random_forests,
)
from repro.lca.coin_game import CoinDroppingGame, max_provable_layer
from repro.lca.oracle import GraphOracle
from repro.partition.beta_partition import INFINITY
from repro.partition.dependency import dependency_set
from repro.partition.induced import natural_beta_partition


class TestMaxProvableLayer:
    def test_values(self):
        assert max_provable_layer(4, 3) == 1  # log_4(4) = 1
        assert max_provable_layer(16, 3) == 2
        assert max_provable_layer(15, 3) == 1
        assert max_provable_layer(1, 3) == 0

    def test_invalid_x(self):
        with pytest.raises(ValueError):
            max_provable_layer(0, 3)


class TestGameBasics:
    def test_isolated_vertex(self):
        from repro.graphs.graph import Graph

        g = Graph.from_edges(3, [(1, 2)])
        res = CoinDroppingGame(GraphOracle(g), 0, x=4, beta=2).run()
        assert res.layer == 0  # degree 0 <= beta: layer 0 immediately
        assert res.explored == {0}

    def test_path_layer_zero(self):
        g = path_graph(5)
        res = CoinDroppingGame(GraphOracle(g), 2, x=4, beta=2).run()
        assert res.layer == 0

    def test_star_hub(self):
        g = star_graph(8)
        res = CoinDroppingGame(GraphOracle(g), 0, x=4, beta=2).run()
        # Hub has degree 7 > beta; needs leaves layered first -> layer 1.
        assert res.layer == 1

    def test_invalid_parameters(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            CoinDroppingGame(GraphOracle(g), 0, x=0, beta=2)
        with pytest.raises(ValueError):
            CoinDroppingGame(GraphOracle(g), 0, x=4, beta=0)

    def test_proof_is_clipped(self):
        beta = 2
        g = complete_ary_tree(beta + 1, 3)
        x = (beta + 1) ** 2  # provable layers: 0..2, tree has up to 3
        res = CoinDroppingGame(GraphOracle(g), 0, x=x, beta=beta).run()
        clip = max_provable_layer(x, beta)
        assert all(lay <= clip for lay in res.proof.layers.values())
        assert res.layer == INFINITY  # root's true layer 3 > clip


class TestLemma44Correctness:
    """sigma_{S_v}(v) = l_beta(v) whenever |D| <= x^2 and l(v) <= log x."""

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=12, deadline=None)
    def test_forest_union(self, seed):
        alpha = 2
        beta = math.ceil(3 * alpha)
        g = union_of_random_forests(60, alpha, seed=seed)
        x = (beta + 1) ** 2
        natural = natural_beta_partition(g, beta)
        clip = max_provable_layer(x, beta)
        for v in range(0, g.num_vertices, 7):
            dep = dependency_set(g, natural, v)
            res = CoinDroppingGame(GraphOracle(g), v, x=x, beta=beta).run()
            if len(dep) <= x * x and natural.layer(v) <= clip:
                assert res.layer == natural.layer(v)

    def test_deep_tree_exact_layers(self):
        beta = 3
        g = complete_ary_tree(beta + 1, 2)
        natural = natural_beta_partition(g, beta)
        x = (beta + 1) ** 2
        for v in range(0, g.num_vertices, 3):
            res = CoinDroppingGame(GraphOracle(g), v, x=x, beta=beta).run()
            assert res.layer == natural.layer(v)

    def test_layer_never_below_natural(self):
        """Lemma 3.13: the simulated layer can only overestimate."""
        g = union_of_random_forests(80, 3, seed=77)
        beta = 9
        natural = natural_beta_partition(g, beta)
        for v in range(0, 80, 11):
            res = CoinDroppingGame(GraphOracle(g), v, x=10, beta=beta).run()
            assert res.layer >= natural.layer(v)


class TestLemma46Bounds:
    @given(st.integers(min_value=0, max_value=2**31), st.sampled_from([4, 9, 16]))
    @settings(max_examples=12, deadline=None)
    def test_size_and_edge_bounds(self, seed, x):
        g = union_of_random_forests(70, 2, seed=seed)
        res = CoinDroppingGame(GraphOracle(g), seed % 70, x=x, beta=5).run()
        assert len(res.explored) <= x**3 + 1
        assert res.edges_seen <= x**6

    def test_explored_subgraph_connected(self):
        g = union_of_random_forests(60, 2, seed=5)
        res = CoinDroppingGame(GraphOracle(g), 0, x=16, beta=5).run()
        # BFS within explored set from root must reach everything.
        seen = {0}
        stack = [0]
        while stack:
            v = stack.pop()
            for w in g.neighbors(v):
                w = int(w)
                if w in res.explored and w not in seen:
                    seen.add(w)
                    stack.append(w)
        assert seen == res.explored


class TestStrictMode:
    def test_strict_agrees_with_early_exit(self):
        """The fixpoint early-exit must not change the outcome."""
        g = union_of_random_forests(40, 2, seed=30)
        beta, x = 5, 6
        for v in (0, 10, 25):
            fast = CoinDroppingGame(GraphOracle(g), v, x=x, beta=beta).run()
            slow = CoinDroppingGame(
                GraphOracle(g), v, x=x, beta=beta, strict=True
            ).run()
            assert fast.layer == slow.layer
            assert fast.explored == slow.explored

    def test_strict_runs_all_super_iterations(self):
        g = path_graph(5)
        res = CoinDroppingGame(GraphOracle(g), 0, x=3, beta=2, strict=True).run()
        assert res.super_iterations == 9


class TestSuperIterationStepping:
    def test_manual_stepping_matches_run(self):
        g = star_graph(10)
        oracle = GraphOracle(g)
        game = CoinDroppingGame(oracle, 0, x=9, beta=2)
        while game.super_iteration() > 0:
            pass
        sigma = game.current_partition()
        reference = CoinDroppingGame(GraphOracle(g), 0, x=9, beta=2).run()
        assert sigma.layer(0) == reference.layer

    def test_progress_monotone(self):
        """Lemma 4.2 flavor: while the root's simulated layer exceeds its
        natural layer, super-iterations keep adding vertices."""
        beta = 2
        g = complete_ary_tree(beta + 1, 2)
        natural = natural_beta_partition(g, beta)
        oracle = GraphOracle(g)
        game = CoinDroppingGame(oracle, 0, x=(beta + 1) ** 2, beta=beta)
        for _ in range(200):
            sigma = game.current_partition()
            if sigma.layer(0) == natural.layer(0):
                break
            added = game.super_iteration()
            assert added > 0, "no progress while layer still wrong"
        else:
            raise AssertionError("game never converged")
