"""Tests for GraphBuilder."""

from __future__ import annotations

import pytest

from repro.graphs.builder import GraphBuilder


class TestBuilder:
    def test_build_basic(self):
        b = GraphBuilder(4)
        assert b.add_edge(0, 1)
        assert b.add_edge(2, 3)
        g = b.build()
        assert g.num_edges == 2
        assert g.has_edge(0, 1)

    def test_duplicate_returns_false(self):
        b = GraphBuilder(3)
        assert b.add_edge(0, 1)
        assert not b.add_edge(1, 0)
        assert len(b) == 1

    def test_self_loop_rejected(self):
        b = GraphBuilder(3)
        with pytest.raises(ValueError):
            b.add_edge(2, 2)

    def test_out_of_range_rejected(self):
        b = GraphBuilder(3)
        with pytest.raises(ValueError):
            b.add_edge(0, 3)

    def test_has_edge(self):
        b = GraphBuilder(3)
        b.add_edge(0, 2)
        assert b.has_edge(2, 0)
        assert not b.has_edge(0, 1)
        assert not b.has_edge(1, 1)

    def test_add_edges_counts_new(self):
        b = GraphBuilder(4)
        assert b.add_edges([(0, 1), (1, 2), (0, 1)]) == 2

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder(-1)

    def test_empty_build(self):
        g = GraphBuilder(5).build()
        assert g.num_vertices == 5
        assert g.num_edges == 0
