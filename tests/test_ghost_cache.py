"""Cross-round ghost cache: retention policy, budget discipline, parity.

The cache is a pure wall-clock optimization riding two invalidation
rules (see the messaging module docstring): a cached ghost row is a
verbatim copy of the owner's row — kept equal by applying the owner's
retirement prune verbatim — and retention at each round boundary is a
deterministic, seeded function of shard-local state, so the serial
fabric and the pooled worker chains make identical keep/drop decisions.
These tests pin the policy at the _Shard level and the end-to-end
bit-identity contract: toggling the cache (or pooling the shards) may
change communication volume, never observables.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.ampc import faults
from repro.ampc.engine_config import EngineConfig
from repro.ampc.messaging import (
    _GHOST_CACHE_SEED,
    MemoryGuard,
    MemoryGuardError,
    _mix_ids,
    _Shard,
)
from repro.ampc.pool import close_shared_pools
from repro.core.beta_partition_ampc import beta_partition_ampc
from repro.graphs.generators import random_gnm, union_of_random_forests

# Keys whose values are wall-clock measurements, not protocol counts.
_TIMING_KEYS = (
    "shard_wall_s", "comm_overlap_s",
    "serve_s", "install_s", "compact_s", "play_s",
)


def _counts(comm: dict) -> dict:
    return {k: v for k, v in comm.items() if k not in _TIMING_KEYS}


def _slab(rows: dict[int, list[int]]):
    """One sorted (ids, lens, targets) row-resolution slab."""
    ids = np.array(sorted(rows), dtype=np.int64)
    lens = np.array([len(rows[v]) for v in ids.tolist()], dtype=np.int64)
    targets = (
        np.concatenate([
            np.asarray(rows[v], dtype=np.int64) for v in ids.tolist()
        ])
        if len(ids) else np.zeros(0, dtype=np.int64)
    )
    return ids, lens, targets


def _cfg(cache_words: int) -> EngineConfig:
    return EngineConfig.from_env().with_overrides(
        ghost_cache_words=cache_words
    )


def _multi_round_graph():
    # beta=4 / x=8 drives this graph through 5 lca rounds, so rounds
    # >= 2 genuinely exercise cross-round retention (a single-round run
    # can never hit the cache).
    return random_gnm(300, 900, seed=23)


def _partition(g, *, engine, workers=1, shards=3, cache_words, **kw):
    return beta_partition_ampc(
        g, 4, x=8, store="columnar", engine=engine, workers=workers,
        transport="message", shards=shards, min_pool_games=1,
        config=_cfg(cache_words), **kw
    )


@pytest.fixture
def fresh_pool_env():
    close_shared_pools()
    yield
    close_shared_pools()
    assert faults._ACTIVE_SET is False
    assert multiprocessing.active_children() == []


class TestRetentionPolicy:
    _ROWS = {v: list(range(v, v + (v % 3) + 1)) for v in range(4, 60, 4)}

    def _fringe_shard(self, cache_words: int) -> _Shard:
        shard = _Shard(0, 4, None, cache_words=cache_words)
        shard.install_ghosts(*_slab(self._ROWS))
        return shard

    def test_retention_is_deterministic_and_matches_documented_rule(self):
        a = self._fringe_shard(cache_words=24)
        b = self._fringe_shard(cache_words=24)
        assert a.finish_round() == b.finish_round()
        assert np.array_equal(a.ghost_ids, b.ghost_ids)
        for v in a.ghost_ids.tolist():
            assert np.array_equal(a.ghost_row(v), b.ghost_row(v))
        # Survivors are exactly the documented priority prefix: residency
        # ascending, splitmix64(id ^ seed) tie-break, cumulative 1+len
        # words within the cache budget.
        ids, lens, _ = _slab(self._ROWS)
        prio = np.lexsort((
            _mix_ids(ids, _GHOST_CACHE_SEED),
            np.zeros(len(ids), dtype=np.int64),
        ))
        cum = np.cumsum(1 + lens[prio])
        keep = np.sort(prio[: int(np.searchsorted(cum, 24, side="right"))])
        assert np.array_equal(a.ghost_ids, ids[keep])
        # Survivors aged one residency round and moved to the cache tag.
        assert (a.ghost_rounds == 1).all()
        assert a._fringe_words == 0
        assert a._cache_words == int((1 + lens[keep]).sum())

    def test_fresh_fringe_outranks_aged_cache(self):
        shard = _Shard(0, 4, None, cache_words=6)
        shard.install_ghosts(*_slab({10: [1], 20: [2]}))
        assert shard.finish_round() == 0  # 4 words fit the 6-word budget
        shard.install_ghosts(*_slab({30: [3], 40: [4]}))
        assert shard.finish_round() == 1  # 8 words held, 6 fit: drop one
        kept = set(shard.ghost_ids.tolist())
        # Both rounds-0 ghosts survive; the aged pair loses exactly one,
        # picked by the seeded tie-break.
        assert {30, 40} <= kept
        aged = np.array([10, 20], dtype=np.int64)
        loser = aged[np.argmax(_mix_ids(aged, _GHOST_CACHE_SEED))]
        assert kept == {30, 40, 10, 20} - {int(loser)}

    def test_budgeted_shard_never_caches(self):
        shard = _Shard(0, 2, 10_000, cache_words=4096)
        assert shard.cache_words == 0
        shard.install_ghosts(*_slab({4: [1, 2]}))
        assert shard.finish_round() == 1
        assert len(shard.ghost_ids) == 0
        assert shard.guard.current == 0

    def test_mid_round_eviction_spares_cached_rows(self):
        shard = _Shard(0, 4, None, cache_words=1 << 10)
        shard.install_ghosts(*_slab({10: [1], 20: [2]}))
        shard.finish_round()  # both now cached (rounds == 1)
        shard.install_ghosts(*_slab({30: [3]}))
        shard.evict_ghosts(pinned=np.zeros(0, dtype=np.int64))
        # Invalidation rule 2: only the unpinned round-local fringe goes.
        assert shard.ghost_ids.tolist() == [10, 20]


class TestBudgetRollback:
    def test_over_budget_slab_rejected_before_any_ghost_mutates(self):
        shard = _Shard(0, 2, 30)
        shard.install_ghosts(*_slab({4: [1, 2, 3]}))  # 4 words held
        held_before = shard.guard.current
        big = {v: list(range(10)) for v in range(6, 30, 2)}  # 132 words
        with pytest.raises(MemoryGuardError):
            shard.install_ghosts(*_slab(big))
        # Store and accounting exactly as they were: no partial install,
        # no guard drift — the caller can shed load without rollback.
        assert shard.guard.current == held_before
        assert shard.ghost_ids.tolist() == [4]
        assert shard._fringe_words == 4
        assert np.array_equal(shard.ghost_row(4), np.array([1, 2, 3]))
        # A subsequent within-budget slab still lands cleanly.
        shard.install_ghosts(*_slab({8: [5]}))
        assert np.array_equal(shard.ghost_row(8), np.array([5]))

    def test_guard_rollback_on_both_ghost_tags(self):
        guard = MemoryGuard(10, name="t")
        guard.account("ghost_cache", 8)
        with pytest.raises(MemoryGuardError):
            guard.account("ghost_cache", 12)
        assert guard.current == 8 and guard.peak == 8
        with pytest.raises(MemoryGuardError):
            guard.account("ghost_fringe", 5)
        assert guard.current == 8


class TestRetirementPruneEquivalence:
    def test_cached_rows_stay_verbatim_owner_copies(self):
        rows = {2: [3, 5, 7], 4: [5], 6: [1, 3], 8: [9, 11]}
        ids, lens, targets = _slab(rows)
        offsets = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        owner = _Shard(0, 2, None)
        owner.install_owned(ids, offsets, targets)
        holder = _Shard(1, 2, None, cache_words=1 << 10)
        holder.install_ghosts(*owner.serve_rows(ids))
        holder.finish_round()
        assert (holder.ghost_rounds == 1).all()
        # 4 and 8 are NOT retired, but lose every target — both sides
        # must drop them (a row with no surviving target has residual
        # degree 0 and leaves the owner partition); 2 loses one target.
        retired = np.array([5, 9, 11], dtype=np.int64)
        owner.retire(retired)
        holder.retire(retired)
        assert holder.ghost_ids.tolist() == [2, 6]
        assert owner.row_ids.tolist() == [2, 6]
        for v in holder.ghost_ids.tolist():
            assert np.array_equal(holder.ghost_row(v), owner.owned_row(v))
        assert np.array_equal(holder.ghost_row(2), np.array([3, 7]))


class TestCacheDifferential:
    @pytest.mark.parametrize("engine", ["scalar", "batched", "compiled"])
    def test_cache_toggle_never_changes_observables(self, engine):
        g = _multi_round_graph()
        oracle = beta_partition_ampc(g, 4, x=8, store="columnar",
                                     engine=engine)
        on = _partition(g, engine=engine, cache_words=1 << 16)
        off = _partition(g, engine=engine, cache_words=0)
        assert on.partition.layers == oracle.partition.layers
        assert on.partition.layers == off.partition.layers
        for ra, rb in zip(
            off.simulator.stats.rounds, on.simulator.stats.rounds
        ):
            assert (ra.total_reads, ra.total_writes, ra.store_words) == (
                rb.total_reads, rb.total_writes, rb.store_words
            )
        # The cache genuinely fires across rounds...
        assert sum(c["ghost_cache_hits"] for c in on.round_comm) > 0
        assert all(c["ghost_cache_hits"] == 0 for c in off.round_comm)
        # ...and every hit is a row request the fabric no longer ships.
        assert (
            sum(c["row_requests"] for c in on.round_comm)
            < sum(c["row_requests"] for c in off.round_comm)
        )

    @pytest.mark.parametrize("shards", [1, 2, 3, 8])
    def test_pooled_matches_serial_with_cache_on(
        self, shards, fresh_pool_env
    ):
        g = _multi_round_graph()
        kw = dict(engine="compiled", shards=shards, cache_words=1 << 16)
        serial = _partition(g, workers=1, **kw)
        pooled = _partition(g, workers=2, **kw)
        assert pooled.partition.layers == serial.partition.layers
        # Cache decisions replicate exactly across the pool boundary:
        # every hit/eviction/held-word counter, not just the results.
        assert len(serial.round_comm) == len(pooled.round_comm)
        for cs, cp in zip(serial.round_comm, pooled.round_comm):
            assert _counts(cs) == _counts(cp)
        assert pooled.max_held_words == serial.max_held_words

    def test_budget_binds_with_cache_enabled(self):
        g = union_of_random_forests(200, 1, seed=7)
        with pytest.raises(MemoryGuardError):
            beta_partition_ampc(
                g, 3, x=4, store="columnar", transport="message",
                shards=2, min_pool_games=1, shard_budget=50,
                config=_cfg(1 << 16),
            )

    def test_budgeted_run_reports_zero_cache(self):
        g = _multi_round_graph()
        out = _partition(
            g, engine="compiled", cache_words=1 << 16, shard_budget=10**6
        )
        ref = _partition(g, engine="compiled", cache_words=1 << 16)
        # A budgeted shard never caches: identical observables, no cache
        # counters, peaks within budget.
        assert out.partition.layers == ref.partition.layers
        assert all(c["ghost_cache_held_words"] == 0 for c in out.round_comm)
        assert all(c["ghost_cache_hits"] == 0 for c in out.round_comm)
        assert out.max_held_words <= 10**6
