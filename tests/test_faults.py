"""Unit tests for the seeded fault-injection layer (repro.ampc.faults).

The chaos harness is only as trustworthy as its determinism: a failing
schedule must replay exactly from its seed/spec, an injected plan must
beat the CI env shim, and the checksums must catch any byte-level
corruption.  Integration coverage (faults actually recovered by the
pool supervisor) lives in test_chaos_supervisor.py and
test_failure_injection.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ampc import faults
from repro.ampc.faults import (
    FAULT_KINDS,
    ChecksumError,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    payload_checksum,
    rows_checksum,
)


class TestFaultPlanLookup:
    def test_empty_plan_never_faults(self):
        plan = FaultPlan()
        assert all(
            plan.lookup(r, s, a) is None
            for r in range(4) for s in range(4) for a in range(4)
        )

    def test_explicit_entry_fires_only_at_its_key(self):
        plan = FaultPlan({(2, 1, 0): "crash"})
        assert plan.lookup(2, 1, 0) == FaultSpec("crash")
        assert plan.lookup(2, 1, 1) is None
        assert plan.lookup(2, 0, 0) is None
        assert plan.lookup(0, 1, 0) is None

    def test_seeded_sampling_is_deterministic(self):
        a = FaultPlan(seed=7, rate=0.5, kinds=("crash", "garbage"))
        b = FaultPlan(seed=7, rate=0.5, kinds=("crash", "garbage"))
        keys = [(r, s, at) for r in range(10) for s in range(4)
                for at in range(3)]
        assert [a.lookup(*k) for k in keys] == [b.lookup(*k) for k in keys]
        # A different seed draws a different schedule.
        c = FaultPlan(seed=8, rate=0.5, kinds=("crash", "garbage"))
        assert [a.lookup(*k) for k in keys] != [c.lookup(*k) for k in keys]

    def test_rate_one_faults_everything_rate_zero_nothing(self):
        hot = FaultPlan(seed=3, rate=1.0)
        cold = FaultPlan(seed=3, rate=0.0)
        for key in [(0, 0, 0), (5, 2, 1), (99, 7, 3)]:
            assert hot.lookup(*key) is not None
            assert cold.lookup(*key) is None

    def test_attempts_gate_makes_plan_survivable(self):
        plan = FaultPlan(seed=3, rate=1.0, attempts=2)
        assert plan.lookup(0, 0, 0) is not None
        assert plan.lookup(0, 0, 1) is not None
        assert plan.lookup(0, 0, 2) is None  # retries past the gate run clean

    def test_rate_spread_roughly_matches(self):
        plan = FaultPlan(seed=11, rate=0.25, kinds=("crash",))
        n = 2000
        hits = sum(
            plan.lookup(r, s, 0) is not None
            for r in range(n // 4) for s in range(4)
        )
        assert 0.15 < hits / n < 0.35

    def test_hang_and_slow_carry_durations(self):
        plan = FaultPlan(
            {(0, 0, 0): "hang", (0, 1, 0): "slow"}, hang_s=9.0, slow_s=0.5
        )
        assert plan.lookup(0, 0, 0) == FaultSpec("hang", 9.0)
        assert plan.lookup(0, 1, 0) == FaultSpec("slow", 0.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(kinds=("segfault",), seed=1, rate=0.5)
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan({(0, 0, 0): "segfault"})
        with pytest.raises(ValueError, match="rate"):
            FaultPlan(seed=1, rate=1.5)


class TestSpecRoundTrip:
    def test_seeded_plan_round_trips(self):
        plan = FaultPlan(
            seed=42, rate=0.3, kinds=("crash", "garbage", "slow"),
            attempts=2, hang_s=5.0, slow_s=0.01,
        )
        back = FaultPlan.parse(plan.spec())
        keys = [(r, s, a) for r in range(8) for s in range(4)
                for a in range(3)]
        assert [plan.lookup(*k) for k in keys] == [
            back.lookup(*k) for k in keys
        ]

    def test_explicit_entries_round_trip(self):
        plan = FaultPlan({(0, 1, 0): "crash", (2, 0, 1): "hang"}, hang_s=3.0)
        back = FaultPlan.parse(plan.spec())
        assert back.entries == plan.entries
        assert back.lookup(2, 0, 1) == FaultSpec("hang", 3.0)

    def test_parse_rejects_malformed_specs(self):
        for bad in ("seed", "seed=", "wat=1", "at=crash@1.2", "rate=x"):
            with pytest.raises(ValueError):
                FaultPlan.parse(bad)


class TestInjectAndEnvShim:
    def test_env_shim_parses_and_caches(self, monkeypatch):
        monkeypatch.setenv(
            faults.FAULT_PLAN_ENV, "seed=5;rate=0.2;kinds=crash+garbage"
        )
        plan = faults.active_plan()
        assert plan is not None and plan.seed == 5 and plan.rate == 0.2
        assert faults.active_plan() is plan  # cached on the raw string

    def test_inject_beats_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, "seed=5;rate=1.0")
        mine = FaultPlan(seed=9, rate=0.0)
        with faults.inject(mine):
            assert faults.active_plan() is mine
        # inject(None) disables even the env plan — test isolation.
        with faults.inject(None):
            assert faults.active_plan() is None
        assert faults.active_plan() is not None  # env shim restored

    def test_no_env_no_plan(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
        assert faults.active_plan() is None

    def test_inject_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with faults.inject(FaultPlan(seed=1, rate=1.0)):
                raise RuntimeError("boom")
        assert faults._ACTIVE_SET is False

    def test_apply_pre_crash_raises_injected_fault(self):
        with pytest.raises(InjectedFault, match="crash"):
            faults.apply_pre(FaultSpec("crash"))
        faults.apply_pre(None)  # no-op
        faults.apply_pre(FaultSpec("slow", 0.0))  # returns after sleep(0)

    def test_every_kind_is_documented_in_module(self):
        doc = faults.__doc__
        for kind in FAULT_KINDS:
            assert f"``{kind}``" in doc


class TestChecksums:
    def test_payload_checksum_detects_any_flip(self):
        a = np.arange(32, dtype=np.int64)
        b = np.arange(8, dtype=np.float64)
        base = payload_checksum(a, b)
        assert payload_checksum(a, b) == base
        bad = a.copy()
        bad[17] += 1
        assert payload_checksum(bad, b) != base
        # Order-sensitive: swapping arrays changes the digest.
        assert payload_checksum(b, a) != base

    def test_payload_checksum_length_sensitive(self):
        # Same bytes, different split: an xxhash-style digest must see
        # the framing, not just the concatenated stream.
        a = np.zeros(4, dtype=np.int64)
        b = np.zeros(2, dtype=np.int64)
        assert payload_checksum(a) != payload_checksum(b, b)

    def test_rows_checksum_covers_every_slab_column(self):
        ids = np.array([3, 9], dtype=np.int64)
        lens = np.array([2, 0], dtype=np.int64)
        tgts = np.array([1, 2], dtype=np.int64)
        base = rows_checksum(ids, lens, tgts)
        assert rows_checksum(ids.copy(), lens.copy(), tgts.copy()) == base
        assert rows_checksum(
            np.array([4, 9], dtype=np.int64), lens, tgts
        ) != base
        assert rows_checksum(
            ids, np.array([1, 1], dtype=np.int64), tgts
        ) != base
        assert rows_checksum(
            ids, lens, np.array([1, 5], dtype=np.int64)
        ) != base

    def test_install_ghosts_verifies_checksum(self):
        from repro.ampc.messaging import _Shard

        shard = _Shard(0, 2, None)
        ids = np.array([1], dtype=np.int64)
        lens = np.array([1], dtype=np.int64)
        tgts = np.array([0], dtype=np.int64)
        with pytest.raises(ChecksumError, match="checksum mismatch"):
            shard.install_ghosts(
                ids, lens, tgts,
                checksum=rows_checksum(ids, lens, tgts) ^ 1,
            )
        # The corrupted slab was rejected before any ghost mutated.
        assert not len(shard.ghost_ids)
        shard.install_ghosts(
            ids, lens, tgts, checksum=rows_checksum(ids, lens, tgts)
        )
        assert shard.ghost_row(1) is not None

    def test_rows_stamp_gated_on_active_plan(self):
        # In-process delivery digests the very arrays the serving side
        # would, so a self-stamp can never detect corruption: the
        # fault-free paths must skip it (it would double the digest cost
        # of every row delivery), while chaos mode keeps the verify path
        # exercised.
        from repro.ampc.messaging import _rows_stamp

        ids = np.array([1], dtype=np.int64)
        lens = np.array([1], dtype=np.int64)
        tgts = np.array([0], dtype=np.int64)
        with faults.inject(None):
            assert _rows_stamp(ids, lens, tgts) is None
        with faults.inject(FaultPlan(seed=7, rate=0.5)):
            assert _rows_stamp(ids, lens, tgts) == rows_checksum(
                ids, lens, tgts
            )
