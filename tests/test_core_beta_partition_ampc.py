"""Tests for Theorem 1.2: β-partitioning in simulated AMPC."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.beta_partition_ampc import (
    beta_partition_ampc,
    default_game_budget,
)
from repro.core.orientation import orient_by_partition
from repro.graphs.generators import (
    complete_ary_tree,
    complete_graph,
    grid_2d,
    path_graph,
    preferential_attachment,
    random_gnm,
    union_of_random_forests,
)
from repro.graphs.graph import Graph


class TestBasics:
    def test_empty_graph(self):
        out = beta_partition_ampc(Graph.from_edges(0, []), 3)
        assert out.rounds == 0
        assert out.num_layers == 0

    def test_path(self):
        g = path_graph(10)
        out = beta_partition_ampc(g, 2)
        assert not out.partition.is_partial(g.vertices())
        assert out.partition.is_valid(g, 2)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            beta_partition_ampc(path_graph(3), 0)

    def test_default_budget(self):
        assert default_game_budget(3) == 16


class TestCompletenessAndValidity:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_forest_unions(self, seed, alpha):
        g = union_of_random_forests(80, alpha, seed=seed)
        beta = math.ceil(3 * alpha)
        out = beta_partition_ampc(g, beta)
        assert not out.partition.is_partial(g.vertices())
        assert out.partition.is_valid(g, beta)
        ori = orient_by_partition(g, out.partition)
        assert ori.max_out_degree() <= beta
        assert ori.is_acyclic()

    def test_grid(self):
        g = grid_2d(8, 8)
        out = beta_partition_ampc(g, 5)
        assert out.partition.is_valid(g, 5)

    def test_preferential_attachment_multi_round(self):
        g = preferential_attachment(300, 2, seed=4)
        out = beta_partition_ampc(g, 6)
        assert not out.partition.is_partial(g.vertices())
        assert out.partition.is_valid(g, 6)

    def test_deep_tree_needs_multiple_rounds(self):
        beta = 3
        g = complete_ary_tree(beta + 1, 4)  # 5 natural layers
        out = beta_partition_ampc(g, beta, x=beta + 1)  # certifies 1 layer
        assert out.rounds >= 2
        assert out.partition.is_valid(g, beta)

    def test_layers_appended_monotonically(self):
        # Later-round vertices must sit strictly above earlier ones; with
        # x = beta+1 on a deep tree, round 2 layers exceed round 1 layers.
        beta = 3
        g = complete_ary_tree(beta + 1, 4)
        out = beta_partition_ampc(g, beta, x=beta + 1)
        assert out.partition.max_layer() >= 2


class TestFailureModes:
    def test_beta_too_small_for_clique_raises(self):
        g = complete_graph(8)
        with pytest.raises(RuntimeError):
            beta_partition_ampc(g, 2, max_rounds=5)

    def test_round_cap_respected(self):
        beta = 3
        g = complete_ary_tree(beta + 1, 4)
        with pytest.raises(RuntimeError):
            beta_partition_ampc(g, beta, x=beta + 1, max_rounds=1)


class TestPeelMode:
    def test_peel_mode_completes(self):
        g = union_of_random_forests(100, 2, seed=5)
        out = beta_partition_ampc(g, 6, mode="peel")
        assert out.mode == "peel"
        assert not out.partition.is_partial(g.vertices())
        assert out.partition.is_valid(g, 6)

    def test_peel_matches_natural_layer_count(self):
        from repro.partition.induced import natural_beta_partition

        g = union_of_random_forests(100, 2, seed=6)
        out = beta_partition_ampc(g, 6, mode="peel")
        natural = natural_beta_partition(g, 6)
        assert out.num_layers == natural.size()
        assert out.rounds == natural.size()

    def test_peel_on_clique_at_threshold(self):
        g = complete_graph(6)
        out = beta_partition_ampc(g, 5, mode="peel")
        assert out.num_layers == 1


class TestResourceAccounting:
    def test_simulator_stats_present(self):
        g = union_of_random_forests(60, 2, seed=7)
        out = beta_partition_ampc(g, 6)
        assert out.simulator is not None
        stats = out.simulator.stats
        assert stats.num_rounds == out.rounds
        assert stats.max_machine_communication > 0
        # At toy scale constants dominate n^delta, so delta' can exceed 1;
        # it just has to be a sane positive number.
        assert stats.effective_delta() > 0

    def test_unlayered_history_decreases(self):
        beta = 3
        g = complete_ary_tree(beta + 1, 4)
        out = beta_partition_ampc(g, beta, x=beta + 1)
        hist = out.unlayered_per_round
        assert hist[0] == g.num_vertices
        assert all(a > b for a, b in zip(hist, hist[1:]))


def _assert_outcomes_equivalent(a, b):
    """Dict-backed oracle vs columnar path: observationally identical."""
    assert a.partition.layers == b.partition.layers
    assert a.rounds == b.rounds
    assert a.mode == b.mode
    assert a.x == b.x
    assert a.unlayered_per_round == b.unlayered_per_round
    sa, sb = a.simulator.stats, b.simulator.stats
    assert sa.space_per_machine == sb.space_per_machine
    assert len(sa.rounds) == len(sb.rounds)
    for ra, rb in zip(sa.rounds, sb.rounds):
        for field in (
            "round_index",
            "machines_active",
            "max_reads",
            "max_writes",
            "total_reads",
            "total_writes",
            "store_words",
        ):
            assert getattr(ra, field) == getattr(rb, field), field
    # Space accounting all the way down: every D_i holds the same words.
    for store_a, store_b in zip(a.simulator.stores, b.simulator.stores):
        assert store_a.total_words() == store_b.total_words()


class TestColumnarEquivalence:
    """The columnar fabric must reproduce the dict-backed oracle exactly."""

    @given(st.integers(min_value=0, max_value=2**31), st.integers(1, 3))
    @settings(max_examples=8, deadline=None)
    def test_lca_mode_randomized(self, seed, alpha):
        g = union_of_random_forests(70, alpha, seed=seed)
        beta = 3 * alpha
        a = beta_partition_ampc(g, beta, store="dict")
        b = beta_partition_ampc(g, beta, store="columnar")
        _assert_outcomes_equivalent(a, b)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=8, deadline=None)
    def test_peel_mode_randomized(self, seed):
        g = union_of_random_forests(80, 2, seed=seed)
        a = beta_partition_ampc(g, 6, mode="peel", store="dict")
        b = beta_partition_ampc(g, 6, mode="peel", store="columnar")
        _assert_outcomes_equivalent(a, b)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=6, deadline=None)
    def test_gnm_randomized(self, seed):
        g = random_gnm(120, 260, seed=seed)
        a = beta_partition_ampc(g, 9, store="dict")
        b = beta_partition_ampc(g, 9, store="columnar")
        _assert_outcomes_equivalent(a, b)

    def test_multi_round_deep_tree(self):
        beta = 3
        g = complete_ary_tree(beta + 1, 4)
        a = beta_partition_ampc(g, beta, x=beta + 1, store="dict")
        b = beta_partition_ampc(g, beta, x=beta + 1, store="columnar")
        assert a.rounds >= 2  # the equivalence spans multiple residuals
        _assert_outcomes_equivalent(a, b)

    def test_preferential_attachment(self):
        g = preferential_attachment(300, 2, seed=4)
        a = beta_partition_ampc(g, 6, store="dict")
        b = beta_partition_ampc(g, 6, store="columnar")
        _assert_outcomes_equivalent(a, b)

    def test_fraction_coin_fallback_parity(self):
        # x = 2^15 at β = 1 pushes the forwarding horizon past the
        # scaled-integer cap, so both fabrics run Fraction coins.
        g = path_graph(10)
        a = beta_partition_ampc(g, 1, x=2**15, store="dict")
        b = beta_partition_ampc(g, 1, x=2**15, store="columnar")
        _assert_outcomes_equivalent(a, b)

    def test_failure_parity_beta_too_small(self):
        g = complete_graph(8)
        for store in ("dict", "columnar"):
            with pytest.raises(RuntimeError):
                beta_partition_ampc(g, 2, max_rounds=5, store=store)

    def test_invalid_store_rejected(self):
        with pytest.raises(ValueError):
            beta_partition_ampc(path_graph(3), 2, store="sqlite")

    def test_strict_space_parity_on_peel(self):
        g = union_of_random_forests(150, 2, seed=9)
        a = beta_partition_ampc(g, 6, mode="peel", strict_space=True, store="dict")
        b = beta_partition_ampc(
            g, 6, mode="peel", strict_space=True, store="columnar"
        )
        _assert_outcomes_equivalent(a, b)
        assert b.simulator.stats.within_budget


class TestStrictSpace:
    def test_peel_mode_fits_strict_budgets(self):
        """Each peel-mode machine does 1 read + <=1 write, so even the
        tiny bench-scale n^delta budgets hold strictly."""
        g = union_of_random_forests(150, 2, seed=9)
        out = beta_partition_ampc(g, 6, mode="peel", strict_space=True)
        assert not out.partition.is_partial(g.vertices())
        assert out.simulator.stats.within_budget

    def test_lca_mode_reports_budget_status(self):
        # At toy scale the game's constant factors exceed n^delta; the
        # simulator must *report* that honestly rather than hide it.
        g = union_of_random_forests(150, 2, seed=9)
        out = beta_partition_ampc(g, 6, mode="lca")
        stats = out.simulator.stats
        assert stats.max_machine_communication > 0
        assert isinstance(stats.within_budget, bool)
