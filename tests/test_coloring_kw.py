"""Tests for Kuhn-Wattenhofer color reduction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.kuhn_wattenhofer import kw_color_reduction
from repro.coloring.greedy import greedy_coloring
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_gnm,
    union_of_random_forests,
)
from repro.graphs.validation import is_proper_coloring


class TestKWReduction:
    def test_path_down_to_three(self):
        g = path_graph(20)
        initial = list(range(20))  # trivial n-coloring
        res = kw_color_reduction(g, initial, max_degree=2)
        assert is_proper_coloring(g, res.colors)
        assert res.num_colors == 3
        assert max(res.colors) < 3

    def test_clique_needs_all_colors(self):
        g = complete_graph(5)
        res = kw_color_reduction(g, list(range(5)), max_degree=4)
        assert is_proper_coloring(g, res.colors)
        assert len(set(res.colors)) == 5

    def test_already_small_palette_untouched(self):
        g = cycle_graph(6)
        colors = [0, 1, 0, 1, 0, 1]
        res = kw_color_reduction(g, colors, max_degree=2, palette=3)
        assert res.colors == colors
        assert res.local_rounds == 0

    def test_invalid_colors_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            kw_color_reduction(g, [0, 5, 1], max_degree=2, palette=3)

    def test_round_bound(self):
        # O(Delta * log(m / Delta)) rounds.
        g = union_of_random_forests(100, 2, seed=1)
        delta = g.max_degree()
        res = kw_color_reduction(g, list(range(100)), max_degree=delta)
        import math

        passes = math.ceil(math.log2(100 / (delta + 1))) + 1
        assert res.local_rounds <= (delta + 1) * passes

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs_reach_delta_plus_one(self, seed):
        g = random_gnm(50, 90, seed=seed)
        delta = g.max_degree()
        res = kw_color_reduction(g, list(range(50)), max_degree=delta)
        assert is_proper_coloring(g, res.colors)
        assert res.num_colors <= delta + 1

    def test_starting_from_proper_non_trivial_coloring(self):
        g = random_gnm(60, 100, seed=3)
        base = greedy_coloring(g)
        palette = max(base) + 1
        delta = g.max_degree()
        res = kw_color_reduction(g, base, max_degree=delta, palette=palette)
        assert is_proper_coloring(g, res.colors)
        assert res.num_colors <= delta + 1
